"""Standing churn soak: long seeded membership + data churn, invariants
checked after *every* step.

Tier-2 (``-m soak``) runs long join/leave/fail sequences across every
registered substrate; an unmarked tier-1 smoke runs the same driver
briefly so the invariants stay exercised on every CI run (including the
sanitized leg).

Invariants after each step:

* **PeerStore coherence** — ``node_ids`` sorted and duplicate-free,
  ``n_peers`` consistent, ``peer_loads()`` keyed exactly by the live
  peers, and the per-peer loads summing to the stored key count;
* **overlay structure** — Chord's ring closes (``check_ring``), CAN's
  zones partition the space (``check_partition``), and OneHop's tables
  stay well-formed (``check_tables``) after every membership event; the
  OneHop soak deliberately disseminates only one round per step so
  routes run against *stale* tables (the quarantine/forwarding path),
  then settles and requires exact table convergence at the end;
* **routing liveness** — ``peer_of`` always names a live peer;
* **data** — every tracked key resolves to its last written value
  (after a crash-fail, lost keys are re-put first: a crash may lose
  data, but the overlay must keep routing and accepting writes).

Static substrates (kademlia / koorde / pastry / tapestry / local) have
no membership API; they soak under data churn alone, which still
exercises the kernel's store bookkeeping on every step.

The substrate list comes from ``repro.dht.registry`` — a newly enrolled
substrate soaks automatically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dht import CANDHT, ChordDHT, OneHopDHT
from repro.dht.registry import names as substrate_names
from repro.experiments.common import make_dht

PUTS_PER_STEP = 4

SMOKE_PEERS = 12
SMOKE_STEPS = 6

#: The tier-2 soak runs at more than double the smoke's ring size and
#: step count — large enough that the kernel's incremental sorted-id
#: index sees hundreds of splices per run on every dynamic overlay.
SOAK_PEERS = 28
SOAK_STEPS = 240


def assert_peer_store_coherent(dht):
    ids = dht.node_ids
    assert list(ids) == sorted(ids)
    assert len(ids) == len(set(ids)) == dht.n_peers
    loads = dht.peer_loads()
    assert set(loads) == set(ids)
    assert sum(loads.values()) == len(list(dht.keys()))
    for probe in ("soak-probe-a", "soak-probe-b"):
        assert dht.peer_of(probe) in ids


def membership_step(dht, rng, n_peers: int) -> bool:
    """One membership event where the overlay supports it.

    Returns True when the event may have destroyed data (crash-fail),
    so the driver knows to repair before asserting key presence.
    """
    if isinstance(dht, ChordDHT):
        op = str(rng.choice(["join", "leave", "fail"]))
        if dht.n_peers <= 5:
            op = "join"
        elif dht.n_peers >= 2 * n_peers:
            op = str(rng.choice(["leave", "fail"]))
        lost = False
        if op == "join":
            joined = dht.join()
            assert joined in dht.node_ids
        elif op == "leave":
            victim = dht.node_ids[int(rng.integers(dht.n_peers))]
            dht.leave(victim, graceful=True)
            assert victim not in dht.node_ids
        else:
            victim = dht.node_ids[int(rng.integers(dht.n_peers))]
            dht.fail(victim)
            assert victim not in dht.node_ids
            lost = True
        dht.stabilize_all(rounds=1)
        dht.check_ring()
        return lost
    if isinstance(dht, OneHopDHT):
        op = str(rng.choice(["join", "leave", "fail"]))
        if dht.n_peers <= 5:
            op = "join"
        elif dht.n_peers >= 2 * n_peers:
            op = str(rng.choice(["leave", "fail"]))
        lost = False
        if op == "join":
            joined = dht.join()
            assert joined in dht.node_ids
        else:
            victim = dht.node_ids[int(rng.integers(dht.n_peers))]
            dht.leave(victim, graceful=(op == "leave"))
            assert victim not in dht.node_ids
            lost = op == "fail"
        # One round per step on purpose: events queue faster than they
        # land, so routing runs against stale tables (probe/forward
        # corrections) while remaining exact — the invariants below
        # still hold on every step.
        dht.disseminate(rounds=1)
        dht.check_tables()
        return lost
    if isinstance(dht, CANDHT):
        if dht.n_peers <= 5 or (
            dht.n_peers < 2 * n_peers and rng.random() < 0.5
        ):
            joined = dht.join()
            assert joined in dht.node_ids
        else:
            # CAN leaves need a mergeable zone; scan in random order and
            # take the first victim the overlay accepts.
            order = rng.permutation(len(dht.node_ids))
            for pick in order:
                victim = dht.node_ids[int(pick)]
                if dht.leave(victim):
                    assert victim not in dht.node_ids
                    break
        dht.check_partition()
        return False
    return False  # static overlay: data churn only


def run_soak(name: str, steps: int, seed: int, n_peers: int) -> None:
    dht = make_dht(name, n_peers, seed)
    rng = np.random.default_rng(seed)
    expected: dict[str, tuple[int, int]] = {}

    for step in range(steps):
        for j in range(PUTS_PER_STEP):
            key = f"soak-{step}-{j}"
            dht.put(key, (step, j))
            expected[key] = (step, j)
        if expected and rng.random() < 0.3:
            victim_key = sorted(expected)[int(rng.integers(len(expected)))]
            removed = dht.remove(victim_key)
            assert removed == expected.pop(victim_key)

        data_may_be_lost = membership_step(dht, rng, n_peers)
        if data_may_be_lost:
            # A crash loses the victim's keys; the overlay must still
            # accept the re-puts that repair them.
            for key, value in expected.items():
                dht.put(key, value)

        assert_peer_store_coherent(dht)
        for key, value in expected.items():
            assert dht.get(key) == value

    if isinstance(dht, OneHopDHT):
        # Quiesce the event queue: every table must converge exactly,
        # and converged routing must be back to single-hop.
        dht.settle()
        dht.check_tables()
        assert dht.converged
        for key in list(expected)[:5]:
            owner, hops = dht.route(key)
            assert hops == 1
            assert owner == dht.peer_of(key)


@pytest.mark.parametrize("name", substrate_names())
def test_churn_smoke(name):
    """Tier-1: a short soak on every substrate, every CI run."""
    run_soak(name, steps=SMOKE_STEPS, seed=23, n_peers=SMOKE_PEERS)


@pytest.mark.soak
@pytest.mark.parametrize("name", substrate_names())
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_churn_soak_long(name, seed):
    """Tier-2: long seeded churn sequences (``-m soak``)."""
    run_soak(name, steps=SOAK_STEPS, seed=seed, n_peers=SOAK_PEERS)
