"""Tests for LHT-lookup (paper Alg. 2), including the worked example."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    IndexConfig,
    Label,
    LeafBucket,
    LHTIndex,
    lht_lookup,
    naming,
)
from repro.dht import LocalDHT

unit_floats = st.floats(min_value=0.0, max_value=0.9999999, allow_nan=False)


def _plant_tree(dht: LocalDHT, leaf_texts: list[str]) -> None:
    """Store a hand-built set of leaf buckets under their f_n names."""
    for text in leaf_texts:
        label = Label.parse(text)
        dht.put(str(naming(label)), LeafBucket(label))


class TestWorkedExample:
    """The §5 example: looking up 0.9 with D = 14 in the Fig. 2 tree."""

    FIG2_LEAVES = ["#000", "#0010", "#0011", "#0100", "#0101", "#011"]

    def test_fig2_lookup_of_0_9(self):
        # In Fig. 2, λ(0.9) = #011 (the paper's variant narrates a deeper
        # tree with target #01110; the probe sequence logic is identical).
        dht = LocalDHT(8, 0)
        _plant_tree(dht, self.FIG2_LEAVES)
        result = lht_lookup(dht, IndexConfig(theta_split=4, max_depth=14), 0.9)
        assert result.found
        assert result.bucket.label == Label.parse("#011")
        assert result.name == naming(Label.parse("#011"))

    def test_deep_tree_probe_sequence(self):
        """The paper's exact narrated probes: #011100 (fails), #0 (returns
        #01111, misses), #0111 (returns #01110, the target)."""
        leaves = ["#000", "#0010", "#0011", "#0100", "#0101",
                  "#0110", "#011110", "#011111", "#01110"]
        dht = LocalDHT(8, 0)
        _plant_tree(dht, leaves)
        result = lht_lookup(dht, IndexConfig(theta_split=4, max_depth=14), 0.9)
        assert result.found
        assert result.bucket.label == Label.parse("#01110")
        probed = [str(p) for p in result.probed]
        assert probed[0] == "#011100"  # f_n(prefix of length 8)
        assert probed[1] == "#0"
        assert probed[-1] == "#0111"
        assert result.dht_lookups == 3

    def test_fig2_lookup_of_0_4(self):
        # §5: λ(0.4) = #001-subtree in Fig. 2; here the leaf is #0011?
        # 0.4 ∈ [0.375, 0.5) → #0011.
        dht = LocalDHT(8, 0)
        _plant_tree(dht, self.FIG2_LEAVES)
        result = lht_lookup(dht, IndexConfig(theta_split=4, max_depth=14), 0.4)
        assert result.bucket.label == Label.parse("#0011")


class TestSingleLeaf:
    def test_lookup_in_fresh_index(self):
        dht = LocalDHT(4, 0)
        index = LHTIndex(dht, IndexConfig(theta_split=8, max_depth=20))
        for key in (0.0, 0.3, 0.99):
            result = index.lookup(key)
            assert result.found
            assert result.bucket.label == Label.parse("#0")


class TestLookupProperties:
    @given(st.lists(unit_floats, min_size=1, max_size=250), unit_floats)
    def test_lookup_always_finds_covering_leaf(self, keys, probe):
        dht = LocalDHT(16, 0)
        index = LHTIndex(dht, IndexConfig(theta_split=4, max_depth=40))
        for key in keys:
            index.insert(key)
        result = index.lookup(probe)
        assert result.found
        assert result.bucket.contains_key(probe)

    @given(st.lists(unit_floats, min_size=1, max_size=250))
    def test_every_stored_key_is_retrievable(self, keys):
        dht = LocalDHT(16, 0)
        index = LHTIndex(dht, IndexConfig(theta_split=4, max_depth=40))
        for key in keys:
            index.insert(key)
        for key in keys:
            record, _ = index.exact_match(key)
            assert record is not None and record.key == key

    def test_exact_match_miss(self):
        dht = LocalDHT(8, 0)
        index = LHTIndex(dht, IndexConfig(theta_split=8, max_depth=20))
        rng = np.random.default_rng(0)
        for key in rng.random(100):
            index.insert(float(key))
        record, lookups = index.exact_match(0.123456789)
        assert record is None
        assert lookups >= 1
