"""Unit tests for the LocalDHT backend and the metrics recorder."""

from __future__ import annotations

import pytest

from repro.dht import LocalDHT, MetricsRecorder
from repro.errors import ConfigurationError


class TestLocalDHT:
    def test_put_get_remove(self):
        dht = LocalDHT(n_peers=8, seed=0)
        dht.put("a", 1)
        assert dht.get("a") == 1
        assert dht.remove("a") == 1
        assert dht.get("a") is None
        assert dht.remove("missing") is None

    def test_contains_and_peek_cost_nothing(self):
        dht = LocalDHT(n_peers=8, seed=0)
        dht.put("a", 1)
        before = dht.metrics.snapshot()
        assert "a" in dht
        assert dht.peek("a") == 1
        assert list(dht.keys()) == ["a"]
        assert dht.metrics.since(before).dht_lookups == 0

    def test_metrics_accounting(self):
        dht = LocalDHT(n_peers=16, seed=0)
        dht.put("k", "v")
        dht.get("k")
        dht.get("missing")
        dht.remove("k")
        m = dht.metrics
        assert m.puts == 1 and m.gets == 2 and m.removes == 1
        assert m.dht_lookups == 4
        assert m.failed_gets == 1
        assert m.hops == 4 * 4  # ceil(log2(16)) per op

    def test_placement_is_stable(self):
        dht = LocalDHT(n_peers=32, seed=1)
        assert dht.peer_of("key") == dht.peer_of("key")
        dht2 = LocalDHT(n_peers=32, seed=1)
        assert dht.peer_of("key") == dht2.peer_of("key")

    def test_peer_loads_sum_to_key_count(self):
        dht = LocalDHT(n_peers=8, seed=0)
        for i in range(50):
            dht.put(f"k{i}", i)
        loads = dht.peer_loads()
        assert sum(loads.values()) == 50
        assert len(loads) == dht.n_peers == 8

    def test_single_peer(self):
        dht = LocalDHT(n_peers=1, seed=0)
        dht.put("a", 1)
        assert dht.get("a") == 1

    def test_rejects_zero_peers(self):
        with pytest.raises(ConfigurationError):
            LocalDHT(n_peers=0)


class TestMetricsRecorder:
    def test_snapshot_subtraction(self):
        rec = MetricsRecorder()
        rec.record_put(3)
        snap = rec.snapshot()
        rec.record_get(5, found=False)
        rec.record_moved_records(7)
        delta = rec.since(snap)
        assert delta.puts == 0 and delta.gets == 1
        assert delta.dht_lookups == 1
        assert delta.failed_gets == 1
        assert delta.hops == 5
        assert delta.records_moved == 7

    def test_reset(self):
        rec = MetricsRecorder()
        rec.record_remove(2)
        rec.reset()
        assert rec.dht_lookups == 0 and rec.hops == 0
