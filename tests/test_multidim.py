"""Tests for the z-order multi-dimensional extension (footnote 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dht import LocalDHT
from repro.errors import ConfigurationError, KeyOutOfRangeError
from repro.multidim import (
    MultiDimIndex,
    decompose_rectangle,
    zorder_decode,
    zorder_encode,
)

unit_floats = st.floats(min_value=0.0, max_value=0.9999, allow_nan=False)
points_2d = st.tuples(unit_floats, unit_floats)


class TestZOrder:
    def test_known_encoding(self):
        # point (0.5, 0.0): dim-0 bits 100…, dim-1 bits 000… → key 0.100…₂
        assert zorder_encode((0.5, 0.0), bits_per_dim=4) == 0.5
        # (0.0, 0.5) interleaves to 0.0100…₂ = 0.25
        assert zorder_encode((0.0, 0.5), bits_per_dim=4) == 0.25

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            zorder_encode((), 4)
        with pytest.raises(ConfigurationError):
            zorder_encode((0.5,), 0)
        with pytest.raises(KeyOutOfRangeError):
            zorder_encode((1.0, 0.5), 4)
        with pytest.raises(ConfigurationError):
            zorder_decode(0.5, 0)

    @given(points_2d, st.integers(4, 16))
    def test_roundtrip_within_cell(self, point, bits):
        key = zorder_encode(point, bits)
        decoded = zorder_decode(key, 2, bits)
        for original, recovered in zip(point, decoded):
            assert abs(original - recovered) < 2.0 ** -bits + 1e-12

    @given(st.lists(points_2d, min_size=2, max_size=20, unique=True))
    def test_locality_order_is_deterministic(self, points):
        keys = [zorder_encode(p, 12) for p in points]
        assert keys == [zorder_encode(p, 12) for p in points]

    def test_1d_zorder_is_identity_like(self):
        key = zorder_encode((0.375,), bits_per_dim=8)
        assert key == pytest.approx(0.375)


class TestDecomposition:
    def test_whole_space(self):
        cells = decompose_rectangle((0.0, 0.0), (1.0, 1.0), 8)
        assert cells == [(0.0, 1.0)]

    def test_quadrant(self):
        cells = decompose_rectangle((0.0, 0.0), (0.5, 0.5), 8)
        assert cells == [(0.0, 0.25)]  # the z-order first quadrant

    def test_cells_cover_query(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            lows = tuple(rng.random(2) * 0.8)
            highs = tuple(l + rng.random() * (1 - l) for l in lows)
            cells = decompose_rectangle(lows, highs, 8, max_cells=64)
            # every point in the rectangle maps to a covered key
            for _ in range(30):
                point = tuple(
                    l + rng.random() * (h - l) for l, h in zip(lows, highs)
                )
                if any(p >= 1.0 for p in point):
                    continue
                key = zorder_encode(point, 8)
                assert any(lo <= key < hi for lo, hi in cells), (point, key)

    def test_merging_adjacent(self):
        cells = decompose_rectangle((0.0, 0.0), (1.0, 0.5), 6)
        for (_, hi), (lo, _) in zip(cells, cells[1:]):
            assert hi < lo  # strictly disjoint after merging

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            decompose_rectangle((), (), 8)
        with pytest.raises(ConfigurationError):
            decompose_rectangle((0.5, 0.5), (0.4, 0.6), 8)


class TestMultiDimIndex:
    def _build(self, points, seed=0):
        index = MultiDimIndex(LocalDHT(16, seed), n_dims=2, bits_per_dim=10)
        for p in points:
            index.insert(p, None)
        return index

    def test_insert_and_count(self):
        index = self._build([(0.1, 0.2), (0.3, 0.4)])
        assert len(index) == 2

    def test_dimension_validation(self):
        index = MultiDimIndex(LocalDHT(4, 0), n_dims=2)
        with pytest.raises(ConfigurationError):
            index.insert((0.1,))
        with pytest.raises(ConfigurationError):
            index.rectangle_query((0.0,), (1.0,))
        with pytest.raises(ConfigurationError):
            MultiDimIndex(LocalDHT(4, 0), n_dims=0)

    def test_rectangle_query_matches_bruteforce(self):
        rng = np.random.default_rng(1)
        points = [tuple(float(x) for x in rng.random(2)) for _ in range(800)]
        index = self._build(points)
        for _ in range(15):
            lows = tuple(float(x) for x in rng.random(2) * 0.7)
            highs = tuple(l + float(rng.random()) * 0.3 for l in lows)
            result = index.rectangle_query(lows, highs)
            expect = sorted(
                p
                for p in points
                if all(l <= c < h for c, l, h in zip(p, lows, highs))
            )
            assert [p for p, _ in result.points] == expect

    def test_query_cost_reported(self):
        rng = np.random.default_rng(2)
        points = [tuple(float(x) for x in rng.random(2)) for _ in range(500)]
        index = self._build(points)
        result = index.rectangle_query((0.2, 0.2), (0.6, 0.6))
        assert result.dht_lookups >= result.component_ranges
        assert result.parallel_steps >= 1

    def test_payloads_survive(self):
        index = MultiDimIndex(LocalDHT(4, 0), n_dims=3, bits_per_dim=8)
        index.insert((0.1, 0.2, 0.3), "tagged")
        result = index.rectangle_query((0.0, 0.0, 0.0), (0.5, 0.5, 0.5))
        assert result.points == (((0.1, 0.2, 0.3), "tagged"),)
