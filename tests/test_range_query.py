"""Tests for LHT range queries (paper §6, Algs. 3-4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    IndexConfig,
    Label,
    LHTIndex,
    Range,
    ROOT,
    compute_lca,
)
from repro.dht import LocalDHT
from repro.errors import LabelError

unit_floats = st.floats(min_value=0.0, max_value=0.9999999, allow_nan=False)


def _build(keys, theta=4, depth=40, seed=0):
    index = LHTIndex(
        LocalDHT(n_peers=16, seed=seed),
        IndexConfig(theta_split=theta, max_depth=depth),
    )
    for key in keys:
        index.insert(key)
    return index


class TestComputeLCA:
    def test_paper_example(self):
        # §6.2: any leaf receiving [0.2, 0.6) computes the LCA to be #0.
        assert compute_lca(Range(0.2, 0.6), 20) == ROOT

    def test_tight_dyadic_range(self):
        # [0.25, 0.5) is exactly node #001.
        assert compute_lca(Range(0.25, 0.5), 20) == Label.parse("#001")

    def test_narrow_range_descends(self):
        lca = compute_lca(Range(0.30, 0.31), 20)
        assert lca.depth > 3
        assert lca.interval.low <= Range(0.30, 0.31).lo
        assert Range(0.30, 0.31).hi <= lca.interval.high

    def test_depth_cap(self):
        lca = compute_lca(Range(0.3, 0.3000001), 5)
        assert lca.depth <= 5

    @given(unit_floats, unit_floats)
    def test_lca_contains_range(self, a, b):
        lo, hi = min(a, b), max(a, b)
        if lo == hi:
            return
        lca = compute_lca(Range(lo, hi), 30)
        assert lca.interval.low <= Range(lo, hi).lo
        assert Range(lo, hi).hi <= lca.interval.high


class TestCorrectness:
    def test_empty_range(self):
        index = _build([0.1, 0.2])
        result = index.range_query(0.5, 0.5)
        assert result.records == ()
        assert result.dht_lookups == 0

    def test_invalid_range(self):
        index = _build([0.1])
        with pytest.raises(LabelError):
            index.range_query(0.6, 0.5)

    def test_full_range_returns_everything(self):
        keys = [0.05, 0.15, 0.35, 0.55, 0.75, 0.95, 0.65, 0.25]
        index = _build(keys, theta=4)
        result = index.range_query(0.0, 1.0)
        assert result.keys == sorted(keys)

    def test_range_within_single_leaf(self):
        index = _build([0.1, 0.9])  # single-leaf tree (θ=4, 2 records)
        result = index.range_query(0.3, 0.4)
        assert result.records == ()
        result = index.range_query(0.05, 0.5)
        assert result.keys == [0.1]

    def test_bounds_are_half_open(self):
        index = _build([0.2, 0.4, 0.6])
        result = index.range_query(0.2, 0.6)
        assert result.keys == [0.2, 0.4]

    def test_range_at_space_edges(self):
        keys = [0.0, 0.001, 0.999, 0.5]
        index = _build(keys)
        assert index.range_query(0.0, 0.01).keys == [0.0, 0.001]
        assert index.range_query(0.99, 1.0).keys == [0.999]

    def test_dyadic_aligned_range(self):
        rng = np.random.default_rng(0)
        keys = [float(k) for k in rng.random(300)]
        index = _build(keys, theta=4)
        result = index.range_query(0.25, 0.5)
        assert result.keys == sorted(k for k in keys if 0.25 <= k < 0.5)

    @given(
        st.lists(unit_floats, min_size=1, max_size=250),
        unit_floats,
        unit_floats,
    )
    def test_matches_bruteforce(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        index = _build(keys, theta=4)
        result = index.range_query(lo, hi)
        assert result.keys == sorted(k for k in keys if lo <= k < hi)

    @given(st.lists(unit_floats, min_size=50, max_size=200))
    def test_gaussian_like_clusters(self, keys):
        # skew all keys into a narrow band to force deep lopsided trees
        squeezed = [0.4 + k * 0.01 for k in keys]
        index = _build(squeezed, theta=4)
        result = index.range_query(0.4, 0.405)
        assert result.keys == sorted(k for k in squeezed if 0.4 <= k < 0.405)


class TestCostAccounting:
    @given(
        st.lists(unit_floats, min_size=20, max_size=250),
        unit_floats,
        unit_floats,
    )
    def test_decomposition_is_disjoint(self, keys, a, b):
        """Each leaf receives exactly one subrange: collection attempts
        equal distinct buckets visited (stronger than deduplication)."""
        lo, hi = min(a, b), max(a, b)
        index = _build(keys, theta=4)
        result = index.range_query(lo, hi)
        assert result.collect_calls == result.buckets_visited

    def test_buckets_visited_counts_distinct(self):
        rng = np.random.default_rng(1)
        keys = [float(k) for k in rng.random(500)]
        index = _build(keys, theta=4)
        result = index.range_query(0.1, 0.6)
        assert result.buckets_visited >= 1
        assert result.parallel_steps <= result.dht_lookups

    def test_latency_not_worse_than_bandwidth(self):
        rng = np.random.default_rng(2)
        keys = [float(k) for k in rng.random(1000)]
        index = _build(keys, theta=8)
        for _ in range(50):
            lo = float(rng.random() * 0.8)
            result = index.range_query(lo, lo + 0.15)
            assert 0 < result.parallel_steps <= result.dht_lookups

    def test_wide_range_latency_sublinear(self):
        """Latency must grow far slower than the bucket count (the whole
        point of parallel forwarding — cf. Fig. 10)."""
        rng = np.random.default_rng(3)
        keys = [float(k) for k in rng.random(3000)]
        index = _build(keys, theta=8)
        result = index.range_query(0.05, 0.95)
        assert result.buckets_visited > 50
        assert result.parallel_steps < result.buckets_visited / 4
