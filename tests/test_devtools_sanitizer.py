"""Runtime-sanitizer tests: activation, healthy runs, corrupted trees.

Complements ``tests/test_inspector_corruption.py``: the inspector is the
suite's always-on oracle verifier; the sanitizer is the opt-in hook that
runs equivalent (and stronger — Theorem 2 split/merge) checks after every
mutating index operation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IndexConfig, Label, LeafBucket, LHTIndex, Record
from repro.core.results import MergeEvent, SplitEvent
from repro.dht import ChordDHT, LocalDHT
from repro.devtools.sanitizer import (
    IndexSanitizer,
    sanitizer_enabled,
    sanitizer_mode,
)
from repro.errors import SanitizerError


def _build(theta_split=4, n=60, sanitize=True, seed=0):
    dht = LocalDHT(16, 0)
    config = IndexConfig(theta_split=theta_split, max_depth=20, sanitize=sanitize)
    index = LHTIndex(dht, config)
    for key in np.random.default_rng(seed).random(n):
        index.insert(float(key))
    return index, dht, config


class TestActivation:
    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("LHT_SANITIZE", "1")
        assert sanitizer_enabled()
        assert sanitizer_mode() == "on"
        index = LHTIndex(LocalDHT(4, 0), IndexConfig(theta_split=4))
        assert index._sanitizer is not None

    def test_env_var_full_mode(self, monkeypatch):
        monkeypatch.setenv("LHT_SANITIZE", "full")
        assert sanitizer_mode() == "full"
        index = LHTIndex(LocalDHT(4, 0), IndexConfig(theta_split=4))
        assert index._sanitizer is not None
        assert index._sanitizer._full_sweeps

    def test_env_var_falsy_values_disable(self, monkeypatch):
        for value in ("0", "false", "off", ""):
            monkeypatch.setenv("LHT_SANITIZE", value)
            assert not sanitizer_enabled()
            assert sanitizer_mode() == "off"
        index = LHTIndex(LocalDHT(4, 0), IndexConfig(theta_split=4))
        assert index._sanitizer is None

    def test_config_flag_enables_without_env(self, monkeypatch):
        monkeypatch.delenv("LHT_SANITIZE", raising=False)
        index = LHTIndex(LocalDHT(4, 0), IndexConfig(theta_split=4, sanitize=True))
        assert index._sanitizer is not None

    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("LHT_SANITIZE", raising=False)
        index = LHTIndex(LocalDHT(4, 0), IndexConfig(theta_split=4))
        assert index._sanitizer is None


class TestHealthyRuns:
    def test_sanitized_insert_delete_workload(self):
        index, _, _ = _build(n=80)
        sanitizer = index._sanitizer
        assert sanitizer is not None
        assert sanitizer.checks_run > 0
        assert sanitizer.splits_checked > 0

    def test_sanitized_merge_workload(self):
        dht = LocalDHT(8, 0)
        index = LHTIndex(
            dht,
            IndexConfig(
                theta_split=4, max_depth=20, merge_enabled=True, sanitize=True
            ),
        )
        keys = [float(k) for k in np.random.default_rng(1).random(60)]
        for key in keys:
            index.insert(key)
        for key in keys:
            index.delete(key)
        assert index._sanitizer.merges_checked > 0

    def test_sanitized_chord_substrate(self):
        dht = ChordDHT(n_peers=12, seed=0)
        index = LHTIndex(dht, IndexConfig(theta_split=4, sanitize=True))
        for key in np.random.default_rng(2).random(50):
            index.insert(float(key))
        assert index._sanitizer.checks_run > 0

    def test_skewed_overflow_is_not_a_false_positive(self):
        """A median split may shed nothing under skew; transient
        over-capacity buckets are legal and must not trip the sanitizer."""
        dht = LocalDHT(8, 0)
        index = LHTIndex(dht, IndexConfig(theta_split=4, sanitize=True))
        # Tight cluster: all keys share a long common prefix, so several
        # consecutive median splits move zero records.
        for i in range(12):
            index.insert(0.300001 + i * 1e-9)
        assert index._sanitizer.checks_run > 0


class TestCorruptionDetection:
    def test_bucket_under_wrong_key(self):
        _, dht, config = _build(sanitize=False)
        bucket = next(
            b for k in dht.keys() if isinstance(b := dht.peek(k), LeafBucket)
        )
        dht.put(str(Label.parse("#01110011")), bucket)
        with pytest.raises(SanitizerError, match="Theorem 1"):
            IndexSanitizer(dht, config).check()

    def test_missing_leaf_breaks_partition(self):
        _, dht, config = _build(sanitize=False)
        key = next(
            k for k in dht.keys()
            if isinstance(b := dht.peek(k), LeafBucket) and b.label.depth > 1
        )
        dht.remove(key)
        with pytest.raises(SanitizerError):
            IndexSanitizer(dht, config).check()

    def test_overstuffed_bucket(self):
        _, dht, config = _build(sanitize=False)
        bucket = next(
            b for k in dht.keys() if isinstance(b := dht.peek(k), LeafBucket)
        )
        low, width = bucket.label.interval.low, bucket.label.interval.width
        bucket.extend(
            [Record(float(low + width * (i + 1) / 40)) for i in range(30)]
        )
        with pytest.raises(SanitizerError, match="over"):
            IndexSanitizer(dht, config).check()

    def test_relabelled_bucket(self):
        _, dht, config = _build(sanitize=False)
        bucket = next(
            b for k in dht.keys()
            if isinstance(b := dht.peek(k), LeafBucket) and b.label.depth > 2
        )
        bucket.label = bucket.label.sibling
        with pytest.raises(SanitizerError):
            IndexSanitizer(dht, config).check()

    def test_unparsable_storage_key(self):
        _, dht, config = _build(sanitize=False)
        dht.put("not-a-label", LeafBucket(Label("01")))
        with pytest.raises(SanitizerError, match="unparsable"):
            IndexSanitizer(dht, config).check()

    def test_corruption_caught_on_next_mutation(self):
        """The wired-in hook: corrupt between operations, the next insert
        trips the sweep.  Overstuffing keeps the routing structure intact
        so the corruption surfaces as a SanitizerError, not a lost lookup.
        """
        index, dht, _ = _build(sanitize=True, n=40)
        bucket = next(
            b for k in dht.keys() if isinstance(b := dht.peek(k), LeafBucket)
        )
        low, width = bucket.label.interval.low, bucket.label.interval.width
        bucket.extend(
            [Record(float(low + width * (i + 1) / 40)) for i in range(30)]
        )
        with pytest.raises(SanitizerError):
            for probe in np.random.default_rng(9).random(10):
                index.insert(float(probe))


class TestTheorem2Checks:
    def test_valid_split_event_passes(self):
        index, dht, config = _build(sanitize=True, n=40)
        sanitizer = index._sanitizer
        assert sanitizer.splits_checked > 0  # exercised by the build

    def test_split_event_with_swapped_children_rejected(self):
        _, dht, config = _build(sanitize=False)
        sanitizer = IndexSanitizer(dht, config)
        # Parent ends in 0, so appending 0 extends the trailing run: the
        # LEFT child shares f_n with the parent and must be retained.
        parent = Label("010")
        bogus = SplitEvent(
            parent=parent,
            local=parent.right_child,  # wrong child retained
            remote=parent.left_child,
            alpha=0.5,
            records_moved=0,
            dht_lookups=1,
        )
        with pytest.raises(SanitizerError, match="Theorem 2"):
            sanitizer.check_split(bogus)

    def test_split_event_with_foreign_children_rejected(self):
        _, dht, config = _build(sanitize=False)
        sanitizer = IndexSanitizer(dht, config)
        bogus = SplitEvent(
            parent=Label("010"),
            local=Label("0110"),
            remote=Label("0111"),
            alpha=0.5,
            records_moved=0,
            dht_lookups=1,
        )
        with pytest.raises(SanitizerError, match="children"):
            sanitizer.check_split(bogus)

    def test_merge_event_dual_rejected(self):
        _, dht, config = _build(sanitize=False)
        sanitizer = IndexSanitizer(dht, config)
        parent = Label("010")
        # The absorbed child must be the parent-named one (#0101 here,
        # since f_n(#0101) = #010); absorbing #0100 is the wrong dual.
        bogus = MergeEvent(
            survivor=parent,
            absorbed=parent.left_child,
            records_moved=0,
            dht_lookups=2,
        )
        with pytest.raises(SanitizerError, match="Theorem 2 dual"):
            sanitizer.check_merge(bogus)

    def test_merge_event_valid_dual_passes(self):
        _, dht, config = _build(sanitize=False)
        sanitizer = IndexSanitizer(dht, config)
        parent = Label("010")
        good = MergeEvent(
            survivor=parent,
            absorbed=parent.right_child,  # f_n(#0101) = #010 = parent
            records_moved=0,
            dht_lookups=2,
        )
        sanitizer.check_merge(good)
        assert sanitizer.merges_checked == 1
