"""Property-based tests for the label algebra and tree invariants.

Hypothesis sweeps the combinatorial core of the paper:

* **Theorem 1** — the naming function ``f_n`` restricted to the leaves of
  any space-partition tree is a bijection onto the internal nodes plus
  the virtual root (generated trees, not hand-picked examples);
* the label algebra's algebraic identities: parent/child roundtrips,
  neighbor adjacency (Def. 3), next-naming name-class collapse (Def. 2),
  naming prefix structure;
* the leaf-interval **partition invariant**: the leaves of both a
  generated tree and a real ``LHTIndex`` built from random keys tile
  ``[0, 1)`` exactly, with no gaps and no overlaps.

Profiles are configured in ``conftest.py``; CI runs with
``HYPOTHESIS_PROFILE=ci`` (derandomized) so failures replay exactly.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.core import IndexConfig, LHTIndex, Label, ROOT, VIRTUAL_ROOT
from repro.core.keys import key_bits, label_for_key, mu_path
from repro.core.naming import (
    lca_label,
    left_neighbor,
    naming,
    next_naming,
    right_neighbor,
)
from repro.dht import LocalDHT
from repro.errors import LabelError

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

#: Any non-virtual-root label: "0" plus up to 18 further bits.
labels = st.text(alphabet="01", min_size=0, max_size=18).map(
    lambda tail: Label("0" + tail)
)

#: Dyadic keys in [0, 1) at resolution 2^-16 — exactly representable, so
#: every tree-arithmetic comparison is exact.
dyadic_keys = st.integers(min_value=0, max_value=2**16 - 1).map(
    lambda n: n / 2**16
)


def grow_tree(splits: list[int]) -> tuple[list[Label], set[Label]]:
    """Deterministically grow a space-partition tree from split draws.

    Starts from the single-leaf tree ``{#0}`` and, for each draw, splits
    the leaf it indexes (mod the current leaf count).  Returns the final
    leaves and every internal node created along the way.
    """
    leaves = [ROOT]
    internal: set[Label] = set()
    for draw in splits:
        victim = leaves.pop(draw % len(leaves))
        if victim.depth >= 20:
            leaves.append(victim)
            continue
        internal.add(victim)
        leaves.extend((victim.left_child, victim.right_child))
    return leaves, internal


tree_splits = st.lists(
    st.integers(min_value=0, max_value=2**30), min_size=0, max_size=60
)


# ----------------------------------------------------------------------
# Theorem 1: f_n is a bijection leaves -> internal nodes + virtual root
# ----------------------------------------------------------------------


class TestNamingBijectivity:
    @given(tree_splits)
    def test_fn_bijects_leaves_onto_internal_nodes(self, splits):
        leaves, internal = grow_tree(splits)
        names = [naming(leaf) for leaf in leaves]
        # injective on the leaf set...
        assert len(set(names)) == len(leaves)
        # ...and surjective onto internal nodes + the virtual root.
        assert set(names) == internal | {VIRTUAL_ROOT}

    @given(labels)
    def test_fn_is_a_proper_ancestor(self, label):
        name = naming(label)
        assert name.is_proper_prefix_of(label)
        # The truncated run is maximal: the name never ends with the
        # label's final bit.
        assert name.is_virtual_root or name.last_bit != label.last_bit

    @given(labels)
    def test_fn_identifies_the_name_class(self, label):
        """Every label between f_n(λ) and λ on λ's spine shares the name."""
        name = naming(label)
        bits = label.bits
        for end in range(len(name.bits) + 1, len(bits) + 1):
            assert naming(Label(bits[:end])) == name


# ----------------------------------------------------------------------
# Label algebra identities
# ----------------------------------------------------------------------


class TestLabelAlgebra:
    @given(labels)
    def test_child_parent_roundtrip(self, label):
        assert label.left_child.parent == label
        assert label.right_child.parent == label
        assert label.left_child.sibling == label.right_child

    @given(labels)
    def test_interval_halving(self, label):
        inv = label.interval
        left, right = label.left_child.interval, label.right_child.interval
        assert left.low == inv.low and right.high == inv.high
        assert left.high == right.low == inv.midpoint

    @given(labels)
    def test_right_neighbor_adjacency(self, label):
        neighbor = right_neighbor(label)
        if label.on_rightmost_spine:
            assert neighbor == label
        else:
            assert neighbor.interval.low == label.interval.high

    @given(labels)
    def test_left_neighbor_adjacency(self, label):
        neighbor = left_neighbor(label)
        if label.on_leftmost_spine:
            assert neighbor == label
        else:
            assert neighbor.interval.high == label.interval.low

    @given(dyadic_keys, st.integers(min_value=2, max_value=20))
    def test_lookup_path_covers_its_key(self, key, depth):
        mu = mu_path(key, depth)
        assert mu.depth == depth
        assert label_for_key(key, depth).contains(key)
        # Every prefix of the path also covers the key.
        for length in range(2, mu.length + 1):
            assert mu.prefix(length).contains(key)

    @given(dyadic_keys, st.integers(min_value=2, max_value=20))
    def test_next_naming_skips_exactly_one_name_class(self, key, depth):
        mu = mu_path(key, depth)
        x = mu.prefix(2)
        while x != mu:
            try:
                nxt = next_naming(x, mu)
            except LabelError:
                break  # μ continues with identical bits: end of classes
            assert x.is_proper_prefix_of(nxt) and nxt.is_prefix_of(mu)
            assert nxt.last_bit != x.last_bit
            # All strictly intermediate prefixes share f_n(x)'s name.
            for length in range(x.length + 1, nxt.length):
                assert naming(mu.prefix(length)) == naming(x)
            x = nxt

    @given(dyadic_keys, dyadic_keys)
    def test_lca_contains_both_paths(self, a, b):
        mu_a, mu_b = mu_path(a, 20), mu_path(b, 20)
        lca = lca_label(mu_a, mu_b)
        assert lca.is_prefix_of(mu_a) and lca.is_prefix_of(mu_b)
        if lca.depth < 20 and mu_a != mu_b:
            # Deepest: the children already disagree.
            assert mu_a.bits[lca.depth] != mu_b.bits[lca.depth]

    @given(dyadic_keys, st.integers(min_value=1, max_value=19))
    def test_key_bits_roundtrip(self, key, depth):
        bits = key_bits(key, depth)
        assert len(bits) == depth
        low = Fraction(int(bits, 2) if bits else 0, 2**depth)
        assert low <= Fraction(key).limit_denominator(2**30) < low + Fraction(1, 2**depth)


# ----------------------------------------------------------------------
# Partition invariant
# ----------------------------------------------------------------------


def assert_partitions_unit_interval(leaves: list[Label]) -> None:
    ordered = sorted(leaves, key=lambda leaf: leaf.interval.low)
    assert ordered[0].interval.low == 0
    assert ordered[-1].interval.high == 1
    for left, right in zip(ordered, ordered[1:]):
        assert left.interval.high == right.interval.low  # no gap, no overlap


class TestPartitionInvariant:
    @given(tree_splits)
    def test_generated_trees_tile_the_unit_interval(self, splits):
        leaves, _ = grow_tree(splits)
        assert_partitions_unit_interval(leaves)

    @given(
        st.lists(dyadic_keys, min_size=1, max_size=120, unique=True),
        st.integers(min_value=4, max_value=12),
    )
    def test_live_index_leaves_tile_the_unit_interval(self, keys, theta):
        index = LHTIndex(LocalDHT(8, 0), IndexConfig(theta_split=theta))
        index.bulk_load(keys)
        assert_partitions_unit_interval(index.leaf_labels())
        # The partition is what makes proven-absence sound: every key is
        # covered by exactly one leaf.
        for key in keys[:10]:
            covering = [
                leaf for leaf in index.leaf_labels() if leaf.contains(key)
            ]
            assert len(covering) == 1
