"""Tests for the deterministic hot-spot profiler (``repro.devtools.profile``).

The profiler's contract is that the hot-spot *ranking* is a pure
function of the seed — rows order by call count (ties by normalized
function name), never by measured time — so two same-seed runs on any
host agree byte-for-byte on which functions are hot.  These tests pin
that, plus the host-independent function naming and the CLI surface.

The workload here is a deliberately tiny custom shape (not the smoke
profile) so the double profiled run stays fast in tier-1.
"""

from __future__ import annotations

import json

from repro.devtools import profile

#: Tiny but non-degenerate shape: enough keys to split leaves and
#: exercise every phase, small enough to profile twice in tier-1.
_TINY = {
    "seed": 7,
    "n_keys": 2048,
    "n_peers": 16,
    "n_probes": 200,
    "n_ranges": 4,
    "theta_split": 40,
    "max_depth": 24,
    "probe_skew": 1.1,
    "range_lo_max": 0.9,
    "range_width_min": 0.01,
    "range_width_max": 0.05,
}


class TestRunScalePhases:
    def test_phase_names_and_counts_shape(self):
        phases = profile.run_scale_phases(dict(_TINY))
        assert [p.name for p in phases] == ["build", "lookup", "range"]
        assert set(phases[0].counts) == {"leaves"}
        assert set(phases[1].counts) == {"lookup_gets"}
        assert set(phases[2].counts) == {"range_records"}
        assert all(p.seconds >= 0 for p in phases)
        assert phases[0].counts["leaves"] > 1  # the workload actually split

    def test_counts_are_seed_deterministic(self):
        a = profile.run_scale_phases(dict(_TINY))
        b = profile.run_scale_phases(dict(_TINY))
        assert [p.counts for p in a] == [p.counts for p in b]

    def test_hotspot_ranking_is_stable_across_same_seed_runs(self):
        """The acceptance property: rank by (calls desc, name) only —
        identical across runs even though the measured seconds differ."""
        a = profile.run_scale_phases(dict(_TINY), profile_phases=True, top=15)
        b = profile.run_scale_phases(dict(_TINY), profile_phases=True, top=15)
        for pa, pb in zip(a, b):
            ranking_a = [(r["function"], r["calls"]) for r in pa.hotspots]
            ranking_b = [(r["function"], r["calls"]) for r in pb.hotspots]
            assert ranking_a == ranking_b, f"phase {pa.name} ranking drifted"
            assert ranking_a, f"phase {pa.name} profiled no calls"

    def test_hotspots_rank_by_calls_then_name(self):
        phases = profile.run_scale_phases(
            dict(_TINY), profile_phases=True, top=20
        )
        for phase in phases:
            keys = [(-r["calls"], r["function"]) for r in phase.hotspots]
            assert keys == sorted(keys)

    def test_unprofiled_run_reports_no_hotspots(self):
        phases = profile.run_scale_phases(dict(_TINY), profile_phases=False)
        assert all(p.hotspots == [] for p in phases)


class TestNormalizeFunction:
    def test_builtins_normalize_without_paths(self):
        assert (
            profile._normalize_function("~", 0, "<built-in method len>")
            == "<builtin>:<built-in method len>"
        )
        assert (
            profile._normalize_function("<string>", 2, "__init__")
            == "<builtin>:__init__"
        )

    def test_repro_paths_anchor_at_package_root(self):
        name = profile._normalize_function(
            "/home/someone/src/repro/core/bucket.py", 124, "add"
        )
        assert name == "repro/core/bucket.py:124:add"

    def test_foreign_paths_keep_basename_only(self):
        name = profile._normalize_function("/usr/lib/python3/random.py", 1, "f")
        assert name == "random.py:1:f"


class TestCli:
    def test_json_report_is_machine_readable(self, capsys, monkeypatch):
        monkeypatch.setitem(profile.SCALE_PROFILES, "tiny", dict(_TINY))
        assert profile.main(["--profile", "tiny", "--json", "--top", "5"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["profile"] == "tiny"
        assert [p["name"] for p in payload["phases"]] == [
            "build",
            "lookup",
            "range",
        ]
        assert all(len(p["hotspots"]) <= 5 for p in payload["phases"])

    def test_text_report_lists_every_phase(self, capsys, monkeypatch):
        monkeypatch.setitem(profile.SCALE_PROFILES, "tiny", dict(_TINY))
        assert profile.main(["--profile", "tiny", "--top", "3"]) == 0
        out = capsys.readouterr().out
        for phase in ("build", "lookup", "range"):
            assert f"== {phase}:" in out
        assert "function" in out
