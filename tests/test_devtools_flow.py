"""Whole-program analyzer tests: call-graph builder + rules LHT007-LHT011.

Every fixture is a *multi-module* tree written into tmp_path, because the
analyzer's whole reason to exist is seeing across file boundaries.  Each
rule gets at least one positive (seeded violation detected) and one
negative (legitimate pattern stays clean), and the transitive-hermeticity
positives additionally prove that the per-file linter misses them.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.flow import (
    ANALYZER_RULES,
    analyze_paths,
    build_program,
    main,
)
from repro.devtools.lint import lint_paths

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for relpath, source in files.items():
        file = tmp_path / relpath
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_text(source)
    return tmp_path


def codes(violations) -> list[str]:
    return [v.code for v in violations]


# ----------------------------------------------------------------------
# Shared fixture trees
# ----------------------------------------------------------------------

TRANSITIVE_SINK = {
    # util/ is not a deterministic package; the sink hides two calls deep.
    "util/timing.py": (
        "import time\n\n"
        "def helper():\n"
        "    return deeper()\n\n"
        "def deeper():\n"
        "    return time.perf_counter()\n"
    ),
    # core/ is deterministic; the frontier call is helper().
    "core/engine.py": (
        "from util.timing import helper\n\n"
        "def run():\n"
        "    return helper()\n"
    ),
}


class TestCallGraphBuilder:
    """The builder itself: resolution, sinks, and what stays opaque."""

    def test_direct_sink_recorded_on_owning_function(self, tmp_path):
        write_tree(tmp_path, TRANSITIVE_SINK)
        program = build_program([tmp_path])
        deeper = program.functions["util.timing.deeper"]
        assert [(kind, dotted) for _, _, kind, dotted in deeper.sinks] == [
            ("wall-clock", "time.perf_counter")
        ]
        helper = program.functions["util.timing.helper"]
        assert helper.sinks == []  # one hop away: a call edge, not a sink

    def test_cross_module_call_edge_resolves(self, tmp_path):
        write_tree(tmp_path, TRANSITIVE_SINK)
        program = build_program([tmp_path])
        run = program.functions["core.engine.run"]
        targets = [c.target for c in run.calls if c.project]
        assert targets == ["util.timing.helper"]

    def test_self_method_resolves_through_base_chain(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/base.py": (
                    "class Base:\n"
                    "    def helper(self):\n"
                    "        return 1\n"
                ),
                "pkg/child.py": (
                    "from pkg.base import Base\n\n"
                    "class Child(Base):\n"
                    "    def run(self):\n"
                    "        return self.helper()\n"
                ),
            },
        )
        program = build_program([tmp_path])
        run = program.functions["pkg.child.Child.run"]
        assert [c.target for c in run.calls if c.project] == [
            "pkg.base.Base.helper"
        ]

    def test_dynamic_dispatch_stays_unresolved(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/dyn.py": (
                    "def slow():\n"
                    "    return 1\n\n"
                    "TABLE = {'slow': slow}\n\n"
                    "def run(name):\n"
                    "    return TABLE[name]()\n"
                ),
            },
        )
        program = build_program([tmp_path])
        run = program.functions["pkg.dyn.run"]
        assert all(not c.project for c in run.calls)

    def test_syntax_error_becomes_e999_not_a_crash(self, tmp_path):
        write_tree(tmp_path, {"pkg/broken.py": "def broken(:\n"})
        assert codes(analyze_paths([tmp_path])) == ["E999"]


class TestTransitiveHermeticity:
    """LHT007: sinks reachable through helper chains."""

    def test_two_hop_sink_detected_and_lint_misses_it(self, tmp_path):
        write_tree(tmp_path, TRANSITIVE_SINK)
        violations = analyze_paths([tmp_path])
        assert codes(violations) == ["LHT007"]
        violation = violations[0]
        assert violation.path.endswith("core/engine.py")
        assert "time.perf_counter" in violation.message
        assert "util.timing.helper" in violation.message
        # The acceptance case: the per-file linter provably misses this.
        assert codes(lint_paths([tmp_path / "core" / "engine.py"])) == []

    def test_global_randomness_sink_detected(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "util/draws.py": (
                    "import random\n\n"
                    "def jitter():\n"
                    "    return random.random()\n"
                ),
                "sim/model.py": (
                    "from util.draws import jitter\n\n"
                    "def step(x):\n"
                    "    return x + jitter()\n"
                ),
            },
        )
        violations = analyze_paths([tmp_path], select=["LHT007"])
        assert codes(violations) == ["LHT007"]
        assert "global-randomness" in violations[0].message

    def test_noqa_on_frontier_call_suppresses(self, tmp_path):
        files = dict(TRANSITIVE_SINK)
        files["core/engine.py"] = (
            "from util.timing import helper\n\n"
            "def run():\n"
            "    return helper()  # noqa: LHT007\n"
        )
        write_tree(tmp_path, files)
        assert codes(analyze_paths([tmp_path])) == []

    def test_dynamic_dispatch_is_not_a_false_positive(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "util/dyn.py": (
                    "import time\n\n"
                    "def slow():\n"
                    "    return time.time()\n\n"
                    "TABLE = {'slow': slow}\n"
                ),
                "core/user.py": (
                    "from util.dyn import TABLE\n\n"
                    "def run():\n"
                    "    return TABLE['slow']()\n"
                ),
            },
        )
        assert codes(analyze_paths([tmp_path], select=["LHT007"])) == []

    def test_seeded_generator_helper_is_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "util/rand.py": (
                    "import numpy as np\n\n"
                    "def gen(seed):\n"
                    "    return np.random.default_rng(seed)\n"
                ),
                "core/user.py": (
                    "from util.rand import gen\n\n"
                    "def make(seed):\n"
                    "    return gen(seed)\n"
                ),
            },
        )
        assert codes(analyze_paths([tmp_path])) == []

    def test_direct_sink_in_det_package_is_lint_not_flow_territory(
        self, tmp_path
    ):
        # A sink spelled directly inside core/ is LHT001's finding; the
        # analyzer only owns the cross-module frontier, so it must not
        # double-report.
        write_tree(
            tmp_path,
            {
                "core/direct.py": (
                    "import time\n\n"
                    "def now():\n"
                    "    return time.time()\n"
                ),
            },
        )
        assert codes(analyze_paths([tmp_path])) == []
        assert codes(lint_paths([tmp_path / "core" / "direct.py"])) == [
            "LHT001"
        ]


class TestKernelEncapsulation:
    """LHT008: PeerStore surfaces are layered."""

    def test_storage_surface_outside_kernel_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "experiments/probe.py": (
                    "def probe(index):\n"
                    "    return index.dht.peers.store_of(0)\n"
                ),
            },
        )
        violations = analyze_paths([tmp_path], select=["LHT008"])
        assert codes(violations) == ["LHT008"]
        assert "store_of" in violations[0].message

    def test_membership_outside_dht_package_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "experiments/member.py": (
                    "def grow(dht):\n"
                    "    dht.peers.add_peer(99)\n"
                ),
            },
        )
        violations = analyze_paths([tmp_path], select=["LHT008"])
        assert codes(violations) == ["LHT008"]
        assert "add_peer" in violations[0].message

    def test_peerstore_construction_outside_dht_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "dht/kernel.py": "class PeerStore:\n    pass\n",
                "experiments/mk.py": (
                    "from dht.kernel import PeerStore\n\n"
                    "def make():\n"
                    "    return PeerStore()\n"
                ),
            },
        )
        violations = analyze_paths([tmp_path], select=["LHT008"])
        assert codes(violations) == ["LHT008"]
        assert "constructed outside" in violations[0].message

    def test_membership_inside_dht_package_is_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "dht/sub.py": (
                    "class Sub:\n"
                    "    def join(self, peer_id):\n"
                    "        self.peers.add_peer(peer_id)\n"
                    "        return self.peers.sorted_ids()\n"
                ),
            },
        )
        assert codes(analyze_paths([tmp_path], select=["LHT008"])) == []

    def test_kernel_module_itself_is_exempt(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "dht/kernel.py": (
                    "class SubstrateBase:\n"
                    "    def put(self, key, value):\n"
                    "        self.peers.store_of(0)[key] = value\n"
                ),
            },
        )
        assert codes(analyze_paths([tmp_path], select=["LHT008"])) == []


SUBSTRATE_HEADER = "from dht.kernel import SubstrateBase\n\n"


class TestRoutePurity:
    """LHT009: route paths never store, charge, or touch stores."""

    def test_route_charging_metrics_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "dht/bad.py": SUBSTRATE_HEADER + (
                    "class BadSub(SubstrateBase):\n"
                    "    def route(self, key):\n"
                    "        self.metrics.record_get(1, found=True)\n"
                    "        return 0, 1\n"
                    "    def peer_of(self, key):\n"
                    "        return 0\n"
                ),
            },
        )
        violations = analyze_paths([tmp_path], select=["LHT009"])
        assert codes(violations) == ["LHT009"]
        assert "charges metrics" in violations[0].message

    def test_route_helper_reading_stores_flagged_one_hop_away(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "dht/hop.py": SUBSTRATE_HEADER + (
                    "class HopSub(SubstrateBase):\n"
                    "    def route(self, key):\n"
                    "        return self._peek_store(key), 1\n"
                    "    def _peek_store(self, key):\n"
                    "        if key in self.peers.store_of(0):\n"
                    "            return 0\n"
                    "        return 1\n"
                    "    def peer_of(self, key):\n"
                    "        return 0\n"
                ),
            },
        )
        violations = analyze_paths([tmp_path], select=["LHT009"])
        assert codes(violations) == ["LHT009"]
        assert "_peek_store" in violations[0].message

    def test_route_calling_kernel_storage_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "dht/selfget.py": SUBSTRATE_HEADER + (
                    "class SelfGetSub(SubstrateBase):\n"
                    "    def route(self, key):\n"
                    "        if self.get(key) is None:\n"
                    "            return 1, 1\n"
                    "        return 0, 1\n"
                    "    def peer_of(self, key):\n"
                    "        return 0\n"
                ),
            },
        )
        violations = analyze_paths([tmp_path], select=["LHT009"])
        assert codes(violations) == ["LHT009"]
        assert "self.get" in violations[0].message

    def test_pure_route_is_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "dht/clean.py": SUBSTRATE_HEADER + (
                    "class CleanSub(SubstrateBase):\n"
                    "    def route(self, key):\n"
                    "        ids = self.peers.sorted_ids()\n"
                    "        return ids[0], len(ids)\n"
                    "    def peer_of(self, key):\n"
                    "        return 0\n"
                ),
            },
        )
        assert codes(analyze_paths([tmp_path], select=["LHT009"])) == []

    def test_maintenance_methods_may_move_keys(self, tmp_path):
        # join/leave legitimately mutate stores — only *route* paths are
        # bound by the purity contract.
        write_tree(
            tmp_path,
            {
                "dht/joiner.py": SUBSTRATE_HEADER + (
                    "class JoinSub(SubstrateBase):\n"
                    "    def route(self, key):\n"
                    "        return 0, 1\n"
                    "    def peer_of(self, key):\n"
                    "        return 0\n"
                    "    def join(self, peer_id):\n"
                    "        store = self.peers.add_peer(peer_id)\n"
                    "        store['marker'] = True\n"
                ),
            },
        )
        assert codes(analyze_paths([tmp_path], select=["LHT009"])) == []


POLICY_HEADER = "from dht.kernel import PlacementPolicy\n\n"


class TestPlacementPurity:
    """LHT013: placement policies are pure reads of topology."""

    def test_policy_charging_metrics_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "dht/kernel.py": "class PlacementPolicy:\n    pass\n",
                "dht/bad.py": POLICY_HEADER + (
                    "class ChargingPolicy(PlacementPolicy):\n"
                    "    def replicas_for(self, key, owner, k):\n"
                    "        self.metrics.record_get(1, found=True)\n"
                    "        return [owner]\n"
                ),
            },
        )
        violations = analyze_paths([tmp_path], select=["LHT013"])
        assert codes(violations) == ["LHT013"]
        assert "charges metrics" in violations[0].message

    def test_policy_mutating_store_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "dht/kernel.py": "class PlacementPolicy:\n    pass\n",
                "dht/bad.py": POLICY_HEADER + (
                    "class WritingPolicy(PlacementPolicy):\n"
                    "    def replicas_for(self, key, owner, k):\n"
                    "        store = self.substrate.peers.store_of(owner)\n"
                    "        store[key] = 'replica'\n"
                    "        return [owner]\n"
                ),
            },
        )
        violations = analyze_paths([tmp_path], select=["LHT013"])
        # Two offenses: the store_of() read and the subscript mutation.
        assert set(codes(violations)) == {"LHT013"}
        assert len(violations) == 2

    def test_policy_randomness_flagged_one_helper_away(self, tmp_path):
        # Stricter than LHT009: hermeticity sinks are placement
        # offenses even when reached through a helper.
        write_tree(
            tmp_path,
            {
                "dht/kernel.py": "class PlacementPolicy:\n    pass\n",
                "dht/bad.py": POLICY_HEADER + (
                    "import random\n\n"
                    "def pick(ids):\n"
                    "    return random.choice(ids)\n\n"
                    "class SamplingPolicy(PlacementPolicy):\n"
                    "    def replicas_for(self, key, owner, k):\n"
                    "        return [owner, pick([1, 2, 3])]\n"
                ),
            },
        )
        violations = analyze_paths([tmp_path], select=["LHT013"])
        assert codes(violations) == ["LHT013"]
        assert "sink" in violations[0].message

    def test_pure_membership_read_is_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "dht/kernel.py": "class PlacementPolicy:\n    pass\n",
                "dht/good.py": POLICY_HEADER + (
                    "class RingPolicy(PlacementPolicy):\n"
                    "    def replicas_for(self, key, owner, k):\n"
                    "        ring = self.substrate.peers.sorted_ids()\n"
                    "        idx = ring.index(owner)\n"
                    "        n = len(ring)\n"
                    "        return [ring[(idx + i) % n] "
                    "for i in range(min(k, n))]\n"
                ),
            },
        )
        assert codes(analyze_paths([tmp_path], select=["LHT013"])) == []

    def test_abstract_base_is_exempt(self, tmp_path):
        # The ABC itself (simple name PlacementPolicy) is skipped; only
        # concrete policies are checked.
        write_tree(
            tmp_path,
            {
                "dht/kernel.py": (
                    "class PlacementPolicy:\n"
                    "    def replicas_for(self, key, owner, k):\n"
                    "        raise NotImplementedError\n"
                ),
            },
        )
        assert codes(analyze_paths([tmp_path], select=["LHT013"])) == []


class TestExceptionFlow:
    """LHT010: no broad or silent swallows of typed DHT errors."""

    def test_broad_except_around_routed_call_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/fetch.py": (
                    "def fetch(dht, key):\n"
                    "    try:\n"
                    "        return dht.get(key)\n"
                    "    except Exception:\n"
                    "        return None\n"
                ),
            },
        )
        violations = analyze_paths([tmp_path], select=["LHT010"])
        assert codes(violations) == ["LHT010"]
        assert "except Exception" in violations[0].message

    def test_typed_handler_with_silent_pass_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/drop.py": (
                    "from repro.errors import DHTError\n\n"
                    "def drop(dht, key):\n"
                    "    try:\n"
                    "        return dht.get(key)\n"
                    "    except DHTError:\n"
                    "        pass\n"
                ),
            },
        )
        violations = analyze_paths([tmp_path], select=["LHT010"])
        assert codes(violations) == ["LHT010"]
        assert "silently discards" in violations[0].message

    def test_degraded_result_handling_is_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/checked.py": (
                    "from repro.errors import DHTError\n\n"
                    "def fetch(dht, key):\n"
                    "    try:\n"
                    "        return dht.get(key), 'PRESENT'\n"
                    "    except DHTError:\n"
                    "        return None, 'UNREACHABLE'\n"
                ),
            },
        )
        assert codes(analyze_paths([tmp_path], select=["LHT010"])) == []

    def test_broad_except_reraising_is_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/annotate.py": (
                    "def fetch(dht, key):\n"
                    "    try:\n"
                    "        return dht.get(key)\n"
                    "    except Exception:\n"
                    "        raise\n"
                ),
            },
        )
        assert codes(analyze_paths([tmp_path], select=["LHT010"])) == []

    def test_broad_except_around_benign_code_is_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/parse.py": (
                    "def parse(text):\n"
                    "    try:\n"
                    "        return float(text)\n"
                    "    except Exception:\n"
                    "        return 0.0\n"
                ),
            },
        )
        assert codes(analyze_paths([tmp_path], select=["LHT010"])) == []

    def test_internally_handled_callee_does_not_propagate_risk(
        self, tmp_path
    ):
        # checked() absorbs DHTError itself, so wrapping *it* in a broad
        # handler swallows nothing typed — must stay clean.
        write_tree(
            tmp_path,
            {
                "core/safe.py": (
                    "from repro.errors import DHTError\n\n"
                    "def checked(dht, key):\n"
                    "    try:\n"
                    "        return dht.get(key)\n"
                    "    except DHTError:\n"
                    "        return None\n\n"
                    "def caller(dht, key):\n"
                    "    try:\n"
                    "        return checked(dht, key)\n"
                    "    except Exception:\n"
                    "        return 0\n"
                ),
            },
        )
        assert codes(analyze_paths([tmp_path], select=["LHT010"])) == []

    def test_risk_propagates_transitively_through_helpers(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/layers.py": (
                    "def inner(dht, key):\n"
                    "    return dht.get(key)\n\n"
                    "def outer(dht, key):\n"
                    "    try:\n"
                    "        return inner(dht, key)\n"
                    "    except Exception:\n"
                    "        return None\n"
                ),
            },
        )
        violations = analyze_paths([tmp_path], select=["LHT010"])
        assert codes(violations) == ["LHT010"]


POOL_PREFIX = (
    "import multiprocessing\n\n"
    "def fan_out(worker, cells):\n"
    "    ctx = multiprocessing.get_context('spawn')\n"
    "    with ctx.Pool(2) as pool:\n"
    "        return list(pool.imap(worker, cells))\n"
)


class TestParallelSafety:
    """LHT011: pool workers are module-level and state-clean."""

    def test_lambda_worker_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "jobs/lam.py": (
                    "def run(pool, cells):\n"
                    "    return pool.imap(lambda c: c, cells)\n"
                ),
            },
        )
        violations = analyze_paths([tmp_path], select=["LHT011"])
        assert codes(violations) == ["LHT011"]
        assert "lambda" in violations[0].message

    def test_bound_method_worker_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "jobs/bound.py": (
                    "class Engine:\n"
                    "    def work(self, cell):\n"
                    "        return cell\n"
                    "    def run(self, pool, cells):\n"
                    "        return pool.imap(self.work, cells)\n"
                ),
            },
        )
        violations = analyze_paths([tmp_path], select=["LHT011"])
        assert codes(violations) == ["LHT011"]
        assert "bound method" in violations[0].message

    def test_closure_worker_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "jobs/clos.py": (
                    "def run(pool, cells):\n"
                    "    def local(cell):\n"
                    "        return cell\n"
                    "    return pool.imap(local, cells)\n"
                ),
            },
        )
        violations = analyze_paths([tmp_path], select=["LHT011"])
        assert codes(violations) == ["LHT011"]
        assert "locally defined" in violations[0].message

    def test_worker_rebinding_global_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "jobs/state.py": (
                    "TOTAL = 0\n\n"
                    "def worker(cell):\n"
                    "    global TOTAL\n"
                    "    TOTAL += 1\n"
                    "    return cell\n"
                ),
                "jobs/driver.py": (
                    "from jobs.state import worker\n\n"
                    "def run(pool, cells):\n"
                    "    return pool.imap(worker, cells)\n"
                ),
            },
        )
        violations = analyze_paths([tmp_path], select=["LHT011"])
        assert codes(violations) == ["LHT011"]
        assert "global" in violations[0].message

    def test_worker_mutating_foreign_module_state_flagged(self, tmp_path):
        # The mutation hides one helper call below the shipped worker and
        # targets *another* module's accumulator.
        write_tree(
            tmp_path,
            {
                "jobs/acc.py": "TOTALS = []\n",
                "jobs/work.py": (
                    "from jobs import acc\n\n"
                    "def helper(x):\n"
                    "    acc.TOTALS.append(x)\n\n"
                    "def worker(cell):\n"
                    "    helper(cell)\n"
                    "    return cell\n"
                ),
                "jobs/run.py": (
                    "from jobs.work import worker\n\n"
                    "def run(pool, cells):\n"
                    "    return pool.imap(worker, cells)\n"
                ),
            },
        )
        violations = analyze_paths([tmp_path], select=["LHT011"])
        assert codes(violations) == ["LHT011"]
        assert "jobs.acc.TOTALS" in violations[0].message

    def test_module_level_worker_with_local_accumulator_is_clean(
        self, tmp_path
    ):
        # The sanctioned pattern (repro.experiments.common): the worker
        # mutates only its *own* module's accumulator through that
        # module's accessors, which spawn re-initializes per process.
        write_tree(
            tmp_path,
            {
                "jobs/good.py": (
                    "_CACHE = {}\n\n"
                    "def worker(cell):\n"
                    "    _CACHE[cell] = True\n"
                    "    return cell\n\n"
                    "def run(pool, cells):\n"
                    "    return pool.imap(worker, cells)\n"
                ),
            },
        )
        assert codes(analyze_paths([tmp_path], select=["LHT011"])) == []


class TestDriver:
    def test_json_output_includes_wall_time_and_counts(self, tmp_path, capsys):
        write_tree(tmp_path, TRANSITIVE_SINK)
        assert main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro.devtools.flow"
        assert payload["counts"] == {"LHT007": 1}
        assert payload["violations"][0]["code"] == "LHT007"
        assert isinstance(payload["analysis_wall_s"], float)
        assert payload["files"] == 2

    def test_clean_tree_json_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, {"pkg/ok.py": "X = 1\n"})
        assert main([str(tmp_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"] == []

    def test_select_and_ignore(self, tmp_path):
        files = dict(TRANSITIVE_SINK)
        files["experiments/probe.py"] = (
            "def probe(index):\n    return index.dht.peers.store_of(0)\n"
        )
        write_tree(tmp_path, files)
        everything = set(codes(analyze_paths([tmp_path])))
        assert everything == {"LHT007", "LHT008"}
        assert codes(analyze_paths([tmp_path], select=["LHT008"])) == [
            "LHT008"
        ]
        assert codes(analyze_paths([tmp_path], ignore=["LHT008"])) == [
            "LHT007"
        ]

    def test_unknown_rule_code_rejected(self, tmp_path, capsys):
        from repro.errors import ConfigurationError

        target = tmp_path / "mod.py"
        target.write_text("X = 1\n")
        with pytest.raises(ConfigurationError, match="unknown rule code"):
            analyze_paths([target], select=["LHT099"])
        assert main([str(target), "--select", "LHT099"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_missing_path_is_an_error_not_a_green_gate(self, tmp_path, capsys):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="no such file"):
            analyze_paths([tmp_path / "nope"])
        assert main([str(tmp_path / "nope")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ANALYZER_RULES:
            assert code in out

    def test_test_files_are_exempt(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/test_probe.py": (
                    "def test_probe(index):\n"
                    "    return index.dht.peers.store_of(0)\n"
                ),
            },
        )
        assert codes(analyze_paths([tmp_path])) == []


class TestRepoGate:
    def test_repo_source_tree_is_clean(self):
        """The acceptance gate: the repo's own src/ has zero violations."""
        violations = analyze_paths([REPO_SRC])
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_seeded_violation_exits_one(self, tmp_path, capsys):
        write_tree(tmp_path, TRANSITIVE_SINK)
        assert main([str(tmp_path)]) == 1
        assert "LHT007" in capsys.readouterr().out

    @pytest.mark.parametrize("code", sorted(ANALYZER_RULES))
    def test_rule_catalogue_documented(self, code):
        assert ANALYZER_RULES[code]

    def test_devtools_package_exports(self):
        import repro.devtools as devtools

        assert devtools.ANALYZER_RULES is ANALYZER_RULES
        assert devtools.analyze_paths is analyze_paths
        assert devtools.build_program is build_program
