"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import (
    Clock,
    EventQueue,
    LatencyModel,
    Network,
    RngStreams,
    Simulator,
    TraceLog,
)


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_advances(self):
        clock = Clock()
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_rejects_backwards(self):
        clock = Clock(start=3.0)
        with pytest.raises(SimulationError):
            clock.advance_to(2.0)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired: list[str] = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == ["a", "b", "c"]

    def test_fifo_among_simultaneous(self):
        queue = EventQueue()
        fired: list[int] = []
        for i in range(5):
            queue.push(1.0, lambda i=i: fired.append(i))
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == [0, 1, 2, 3, 4]

    def test_cancellation(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        assert len(queue) == 0
        assert queue.pop() is None

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 2.0


class TestSimulator:
    def test_schedule_and_run(self):
        sim = Simulator()
        fired: list[float] = []
        sim.schedule_in(1.5, lambda: fired.append(sim.now))
        sim.schedule_at(0.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.5, 1.5]
        assert sim.events_processed == 2

    def test_run_until_stops_at_deadline(self):
        sim = Simulator()
        fired: list[float] = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda t=t: fired.append(t))
        sim.run_until(2.0)
        assert fired == [1.0, 2.0]
        assert sim.now == 2.0

    def test_rejects_past_and_negative(self):
        sim = Simulator()
        sim.clock.advance_to(5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_in(-1.0, lambda: None)

    def test_periodic(self):
        sim = Simulator()
        fired: list[float] = []
        sim.schedule_every(1.0, lambda: fired.append(sim.now), until=4.5)
        sim.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_periodic_rejects_nonpositive(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_every(0.0, lambda: None)

    def test_runaway_guard(self):
        sim = Simulator()

        def reschedule() -> None:
            sim.schedule_in(0.001, reschedule)

        sim.schedule_in(0.001, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)


class TestNetwork:
    def _make(self) -> tuple[Simulator, Network]:
        sim = Simulator()
        net = Network(sim, np.random.default_rng(0), LatencyModel(median=0.01))
        return sim, net

    def test_delivery(self):
        sim, net = self._make()
        inbox: list[str] = []
        net.register("node", inbox.append)
        net.send("node", "hello")
        sim.run()
        assert inbox == ["hello"]
        assert net.messages_sent == 1
        assert net.messages_dropped == 0

    def test_drop_to_unregistered(self):
        sim, net = self._make()
        net.send("ghost", "hello")
        sim.run()
        assert net.messages_dropped == 1

    def test_unregister(self):
        sim, net = self._make()
        inbox: list[str] = []
        net.register("node", inbox.append)
        net.unregister("node")
        assert not net.is_live("node")
        net.send("node", "hello")
        sim.run()
        assert inbox == []

    def test_duplicate_registration_rejected(self):
        _, net = self._make()
        net.register("node", lambda m: None)
        with pytest.raises(SimulationError):
            net.register("node", lambda m: None)

    def test_latency_positive(self):
        rng = np.random.default_rng(1)
        model = LatencyModel(median=0.05, sigma=0.5, floor=0.001)
        for _ in range(100):
            assert model.sample(rng) >= 0.001


class TestRngStreams:
    def test_streams_are_deterministic(self):
        a = RngStreams(7).stream("x").random(5)
        b = RngStreams(7).stream("x").random(5)
        assert (a == b).all()

    def test_streams_are_independent(self):
        streams = RngStreams(7)
        a = streams.stream("x").random(5)
        b = streams.stream("y").random(5)
        assert not (a == b).all()

    def test_same_stream_object_reused(self):
        streams = RngStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_fork(self):
        a = RngStreams(7).fork("child").stream("x").random(3)
        b = RngStreams(7).fork("child").stream("x").random(3)
        c = RngStreams(7).stream("x").random(3)
        assert (a == b).all()
        assert not (a == c).all()


class TestTraceLog:
    def test_record_and_filter(self):
        trace = TraceLog()
        trace.record(1.0, "join", node=1)
        trace.record(2.0, "leave", node=2)
        trace.record(3.0, "join", node=3)
        assert len(trace) == 3
        joins = trace.by_category("join")
        assert [r.details["node"] for r in joins] == [1, 3]

    def test_disabled(self):
        trace = TraceLog(enabled=False)
        trace.record(1.0, "join")
        assert len(trace) == 0

    def test_clear(self):
        trace = TraceLog()
        trace.record(1.0, "x")
        trace.clear()
        assert len(trace) == 0
