"""Unit tests for records and leaf buckets (paper §3.1, §3.3)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bucket import LeafBucket, Record
from repro.core.interval import Range
from repro.core.label import Label, ROOT
from repro.errors import KeyOutOfRangeError


class TestRecord:
    def test_key_validation(self):
        Record(0.0)
        Record(0.999999)
        with pytest.raises(KeyOutOfRangeError):
            Record(1.0)
        with pytest.raises(KeyOutOfRangeError):
            Record(-0.5)

    def test_orders_by_key_only(self):
        assert Record(0.1, "b") < Record(0.2, "a")
        assert Record(0.1, "x") == Record(0.1, "x")

    def test_payload_preserved(self):
        assert Record(0.3, {"title": "song"}).value == {"title": "song"}


class TestLeafBucket:
    def test_empty(self):
        bucket = LeafBucket(ROOT)
        assert len(bucket) == 0
        assert bucket.slot_count == 1  # the label occupies one slot
        assert bucket.min_record() is None
        assert bucket.max_record() is None

    def test_add_keeps_sorted(self):
        bucket = LeafBucket(ROOT)
        for key in (0.5, 0.1, 0.9, 0.3):
            bucket.add(Record(key))
        assert [r.key for r in bucket.records] == [0.1, 0.3, 0.5, 0.9]

    def test_add_rejects_foreign_key(self):
        bucket = LeafBucket(Label.parse("#001"))  # [0.25, 0.5)
        bucket.add(Record(0.3))
        with pytest.raises(KeyOutOfRangeError):
            bucket.add(Record(0.7))

    def test_slot_count_and_is_full(self):
        bucket = LeafBucket(ROOT, [Record(0.1), Record(0.2)])
        assert bucket.slot_count == 3
        assert not bucket.is_full(4)
        assert bucket.is_full(3)  # 2 records + label slot = 3

    def test_find_and_remove(self):
        bucket = LeafBucket(ROOT, [Record(0.1, "a"), Record(0.2, "b")])
        assert bucket.find(0.2).value == "b"
        assert bucket.find(0.15) is None
        removed = bucket.remove(0.1)
        assert removed.value == "a"
        assert bucket.remove(0.1) is None
        assert len(bucket) == 1

    def test_contains_key_is_geometric(self):
        # §5's Alg. 2 tests whether the leaf's interval covers δ — it is
        # not a record-membership test.
        bucket = LeafBucket(Label.parse("#001"))
        assert bucket.contains_key(0.3)
        assert not bucket.contains_key(0.6)

    def test_records_in_range(self):
        bucket = LeafBucket(ROOT, [Record(k) for k in (0.1, 0.2, 0.3, 0.4)])
        keys = [r.key for r in bucket.records_in(Range(0.15, 0.35))]
        assert keys == [0.2, 0.3]

    def test_records_in_includes_lower_excludes_upper(self):
        bucket = LeafBucket(ROOT, [Record(0.2), Record(0.4)])
        keys = [r.key for r in bucket.records_in(Range(0.2, 0.4))]
        assert keys == [0.2]

    def test_take_records_in(self):
        bucket = LeafBucket(ROOT, [Record(k) for k in (0.1, 0.3, 0.6, 0.8)])
        taken = bucket.take_records_in(Range(0.5, 1.0))
        assert [r.key for r in taken] == [0.6, 0.8]
        assert [r.key for r in bucket.records] == [0.1, 0.3]

    def test_min_max(self):
        bucket = LeafBucket(ROOT, [Record(0.4), Record(0.1), Record(0.8)])
        assert bucket.min_record().key == 0.1
        assert bucket.max_record().key == 0.8

    def test_relabel(self):
        bucket = LeafBucket(ROOT)
        bucket.label = Label.parse("#00")
        assert bucket.label == Label.parse("#00")

    def test_extend(self):
        bucket = LeafBucket(ROOT)
        bucket.extend([Record(0.5), Record(0.2)])
        assert [r.key for r in bucket.records] == [0.2, 0.5]

    def test_iteration(self):
        bucket = LeafBucket(ROOT, [Record(0.1), Record(0.2)])
        assert [r.key for r in bucket] == [0.1, 0.2]

    @given(st.lists(st.floats(min_value=0.0, max_value=0.999), max_size=40))
    def test_records_in_matches_bruteforce(self, keys: list[float]):
        bucket = LeafBucket(ROOT, [Record(k) for k in keys])
        rng = Range(0.25, 0.75)
        got = sorted(r.key for r in bucket.records_in(rng))
        expect = sorted(k for k in keys if 0.25 <= k < 0.75)
        assert got == expect
