"""Byte-identity proof for the peer-store kernel refactor.

The kernel refactor (``repro.dht.kernel``) re-homed storage, caches, and
metrics charging out of the six substrates — but the paper's numbers must
not move: same DHT-lookup counts, same physical hop counts, same
experiment output for every seed.  This suite pins that contract with
golden files captured from the *pre-refactor* tree: for a pinned seed
matrix (two experiment workloads × all six substrates × two seeds), the
``ExperimentResult.canonical_json()`` of a fresh run must be
byte-identical to the checked-in goldens.

Regenerate (only when a change is *meant* to alter counts)::

    PYTHONPATH=src python tests/test_kernel_equivalence.py --write

which rewrites ``tests/data/equivalence/*.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.config import IndexConfig
from repro.core.index import LHTIndex
from repro.experiments.common import (
    ExperimentResult,
    Series,
    make_dht,
    trial_rng,
)

GOLDEN_DIR = Path(__file__).parent / "data" / "equivalence"

# The goldens were captured from the pre-kernel tree, which had exactly
# these six substrates — the matrix stays pinned to them even as the
# registry grows (OneHop/Koorde post-date the refactor; their index-level
# cost invariance is enforced per phase by experiment E25 instead).
GOLDEN_SUBSTRATES = ("can", "chord", "kademlia", "local", "pastry", "tapestry")

SEEDS = (0, 1)

_N_PEERS = 32
_N_KEYS = 300
_N_PROBES = 40
_N_RANGES = 8
_THETA = 16


def _build(substrate: str, seed: int) -> tuple[LHTIndex, list[float]]:
    rng = trial_rng(seed, f"equiv:{substrate}", 0)
    dht = make_dht(substrate, _N_PEERS, seed)
    index = LHTIndex(dht, IndexConfig(theta_split=_THETA, max_depth=20))
    keys = [float(k) for k in rng.random(_N_KEYS)]
    for key in keys:
        index.insert(key)
    return index, keys


def run_lookup(seed: int) -> ExperimentResult:
    """EQ-A: per-probe lookup cost and total hops, per substrate."""
    cost_series: list[Series] = []
    hop_series: list[Series] = []
    for substrate in GOLDEN_SUBSTRATES:
        index, keys = _build(substrate, seed)
        rng = trial_rng(seed, f"equiv-probes:{substrate}", 0)
        probes = [keys[int(i)] for i in rng.integers(0, len(keys), _N_PROBES)]
        before = index.dht.metrics.snapshot()
        costs = [float(index.lookup(p).dht_lookups) for p in probes]
        spent = index.dht.metrics.since(before)
        cost_series.append(
            Series(substrate, [float(i) for i in range(len(costs))], costs)
        )
        hop_series.append(
            Series(
                f"{substrate}:hops",
                [0.0],
                [float(spent.hops)],
            )
        )
    return ExperimentResult(
        experiment_id=f"EQA-s{seed}",
        title="kernel equivalence: lookup costs and hops",
        x_label="probe",
        y_label="DHT-lookups",
        params={"seed": seed, "n_peers": _N_PEERS, "n_keys": _N_KEYS},
        series=cost_series + hop_series,
    )


def run_range(seed: int) -> ExperimentResult:
    """EQ-B: range/min/max costs and total hops, per substrate."""
    cost_series: list[Series] = []
    hop_series: list[Series] = []
    for substrate in GOLDEN_SUBSTRATES:
        index, _ = _build(substrate, seed)
        rng = trial_rng(seed, f"equiv-ranges:{substrate}", 0)
        before = index.dht.metrics.snapshot()
        costs: list[float] = []
        for _ in range(_N_RANGES):
            lo = float(rng.uniform(0.0, 0.9))
            hi = float(min(1.0, lo + rng.uniform(0.01, 0.3)))
            costs.append(float(index.range_query(lo, hi).dht_lookups))
        costs.append(float(index.min_query().dht_lookups))
        costs.append(float(index.max_query().dht_lookups))
        spent = index.dht.metrics.since(before)
        cost_series.append(
            Series(substrate, [float(i) for i in range(len(costs))], costs)
        )
        hop_series.append(Series(f"{substrate}:hops", [0.0], [float(spent.hops)]))
    return ExperimentResult(
        experiment_id=f"EQB-s{seed}",
        title="kernel equivalence: range/min/max costs and hops",
        x_label="query",
        y_label="DHT-lookups",
        params={"seed": seed, "n_peers": _N_PEERS, "n_keys": _N_KEYS},
        series=cost_series + hop_series,
    )


_RUNNERS = {"eqa": run_lookup, "eqb": run_range}


def _golden_path(name: str, seed: int) -> Path:
    return GOLDEN_DIR / f"{name}_seed{seed}.json"


def _canonical_bytes(result: ExperimentResult) -> str:
    return json.dumps(result.canonical_json(), sort_keys=True, indent=2)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", sorted(_RUNNERS))
def test_canonical_json_matches_pre_refactor_golden(name: str, seed: int):
    golden = _golden_path(name, seed)
    assert golden.exists(), (
        f"golden {golden} missing — generate with "
        "`PYTHONPATH=src python tests/test_kernel_equivalence.py --write`"
    )
    current = _canonical_bytes(_RUNNERS[name](seed))
    assert current == golden.read_text(), (
        f"{name} seed={seed}: canonical_json drifted from the pinned "
        "pre-refactor golden (DHT-lookup or hop counts changed)"
    )


def _write_goldens() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, runner in sorted(_RUNNERS.items()):
        for seed in SEEDS:
            path = _golden_path(name, seed)
            path.write_text(_canonical_bytes(runner(seed)))
            print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--write" in sys.argv:
        _write_goldens()
    else:
        print(__doc__)
