"""Property tests for the paper's theorems and complexity claims.

Each theorem in the paper is checked on randomly grown trees:

* Theorem 1 — ``f_n`` is a bijection from leaf labels to internal-node
  labels (the virtual root included).
* Theorem 2 — a split's two children are named to ``f_n(λ)`` (the local
  leaf) and ``λ`` (the remote leaf).
* Theorem 3 — the min/max buckets live under ``#`` and ``#0``.
* §5 complexity — an LHT-lookup needs at most ``⌈log2(D/2)⌉ + O(1)``
  DHT-gets; §6.3 — a range query needs at most ``B + 3`` DHT-lookups.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    IndexConfig,
    Label,
    LHTIndex,
    ReferenceTree,
    ROOT,
    VIRTUAL_ROOT,
    naming,
)
from repro.dht import LocalDHT

unit_floats = st.floats(min_value=0.0, max_value=0.9999999, allow_nan=False)
key_lists = st.lists(unit_floats, min_size=1, max_size=400)


class TestTheorem1Bijection:
    @given(key_lists)
    def test_naming_is_bijective_on_grown_trees(self, keys: list[float]):
        tree = ReferenceTree(IndexConfig(theta_split=4, max_depth=40))
        for key in keys:
            tree.insert(key)
        leaves = tree.leaf_labels
        names = [naming(leaf) for leaf in leaves]
        # injective: all names distinct
        assert len(set(names)) == len(names)
        # surjective onto the internal nodes (virtual root included)
        assert set(names) == tree.internal_labels()

    def test_single_leaf_tree(self):
        tree = ReferenceTree()
        assert [naming(leaf) for leaf in tree.leaf_labels] == [VIRTUAL_ROOT]

    @given(st.text(alphabet="01", min_size=0, max_size=14))
    def test_inverse_construction(self, bits: str):
        """For every internal node ω the unique preimage is ω11* (ω ends
        with 0) or ω00* (ω ends with 1 or is the virtual root) — the
        constructive content of the proof."""
        omega = Label("0" + bits)
        filler = "1" if omega.last_bit == "0" else "0"
        for repeat in range(1, 5):
            leaf = omega.extend(filler * repeat)
            assert naming(leaf) == omega


class TestTheorem2SplitNaming:
    @given(st.text(alphabet="01", min_size=0, max_size=14))
    def test_one_child_keeps_the_name(self, bits: str):
        leaf = Label("0" + bits)
        children_names = {naming(leaf.left_child), naming(leaf.right_child)}
        assert children_names == {naming(leaf), leaf}

    @given(st.text(alphabet="01", min_size=0, max_size=14))
    def test_local_remote_assignment(self, bits: str):
        """If λ ends with 1, λ0 is the remote leaf (named λ) and λ1 the
        local one; mirrored when λ ends with 0 (Alg. 1 lines 2-8)."""
        leaf = Label("0" + bits)
        if leaf.last_bit == "1":
            assert naming(leaf.left_child) == leaf
            assert naming(leaf.right_child) == naming(leaf)
        else:
            assert naming(leaf.right_child) == leaf
            assert naming(leaf.left_child) == naming(leaf)


class TestTheorem3MinMax:
    @given(key_lists)
    def test_extreme_leaves_have_fixed_names(self, keys: list[float]):
        tree = ReferenceTree(IndexConfig(theta_split=4, max_depth=40))
        for key in keys:
            tree.insert(key)
        ordered = tree.leaf_labels
        assert naming(ordered[0]) == VIRTUAL_ROOT  # leftmost leaf under '#'
        if len(ordered) > 1:
            assert naming(ordered[-1]) == ROOT  # rightmost leaf under '#0'


class TestComplexityClaims:
    def _build(self, n: int, theta: int, max_depth: int, seed: int) -> LHTIndex:
        rng = np.random.default_rng(seed)
        index = LHTIndex(
            LocalDHT(n_peers=32, seed=seed),
            IndexConfig(theta_split=theta, max_depth=max_depth),
        )
        index.bulk_load(float(k) for k in rng.random(n))
        return index

    def test_lookup_probe_bound(self):
        """§5: the binary search runs over ≈ D/2 name classes, so it needs
        at most ⌈log2(D/2)⌉ + 1 probes."""
        max_depth = 20
        index = self._build(4000, theta=10, max_depth=max_depth, seed=1)
        bound = math.ceil(math.log2(max_depth / 2)) + 1
        rng = np.random.default_rng(2)
        worst = 0
        for key in rng.random(500):
            result = index.lookup(float(key))
            assert result.found
            worst = max(worst, result.dht_lookups)
        assert worst <= bound, f"worst lookup used {worst} > bound {bound}"

    def test_lookup_probes_have_distinct_names(self):
        """No DHT key is probed twice within one lookup — the point of the
        name-class collapse."""
        index = self._build(2000, theta=10, max_depth=20, seed=3)
        rng = np.random.default_rng(4)
        for key in rng.random(200):
            result = index.lookup(float(key))
            assert len(set(result.probed)) == len(result.probed)

    def test_range_query_b_plus_3(self):
        """§6.3: a range query over B buckets uses at most B + 3
        DHT-lookups (B ≥ 2; plus 1 more for the leaf-child repair case
        the paper's pseudocode elides — see DESIGN.md)."""
        index = self._build(5000, theta=10, max_depth=20, seed=5)
        rng = np.random.default_rng(6)
        for _ in range(300):
            lo = float(rng.random() * 0.9)
            hi = lo + float(rng.random() * 0.1) + 1e-6
            result = index.range_query(lo, hi)
            if result.buckets_visited >= 2:
                assert result.dht_lookups <= result.buckets_visited + 4

    def test_range_query_failed_lookups_bounded(self):
        """At most one failed lookup per recursive sweep plus one in the
        general forwarding (§6.1, §6.2)."""
        index = self._build(5000, theta=10, max_depth=20, seed=7)
        rng = np.random.default_rng(8)
        for _ in range(200):
            lo = float(rng.random() * 0.8)
            hi = lo + float(rng.random() * 0.2) + 1e-6
            result = index.range_query(lo, hi)
            assert result.failed_lookups <= 3

    def test_minmax_single_lookup(self):
        """Theorem 3: one DHT-lookup regardless of size."""
        for n in (10, 100, 1000, 5000):
            index = self._build(n, theta=10, max_depth=20, seed=n)
            assert index.min_query().dht_lookups == 1
            assert index.max_query().dht_lookups == 1

    def test_split_is_one_lookup(self):
        """§8.2 / Eq. 1: every LHT split costs exactly one DHT-lookup."""
        index = self._build(3000, theta=10, max_depth=20, seed=9)
        assert index.ledger.split_count > 100
        assert all(e.dht_lookups == 1 for e in index.ledger.splits)

    def test_split_moves_at_most_a_bucket_half_on_uniform(self):
        """Eq. 1: the average data movement per split ≈ θ/2 records."""
        theta = 20
        index = self._build(20000, theta=theta, max_depth=24, seed=10)
        mean_moved = (
            index.ledger.maintenance_records_moved / index.ledger.split_count
        )
        assert 0.35 * theta < mean_moved < 0.65 * theta
