"""Tests for the DST and raw-DHT baselines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines import DSTIndex, NaiveIndex
from repro.dht import LocalDHT
from repro.errors import ConfigurationError

unit_floats = st.floats(min_value=0.0, max_value=0.9999999, allow_nan=False)


class TestDST:
    def test_insert_replicates_to_all_ancestors(self):
        dht = LocalDHT(8, 0)
        dst = DSTIndex(dht, depth=6)
        cost = dst.insert(0.3)
        assert cost == 7  # root + 6 levels
        assert dst.records_replicated == 7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DSTIndex(LocalDHT(4, 0), depth=0)

    @given(st.lists(unit_floats, min_size=1, max_size=150), unit_floats, unit_floats)
    def test_range_matches_bruteforce(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        dst = DSTIndex(LocalDHT(8, 0), depth=8)
        for key in keys:
            dst.insert(key)
        result = dst.range_query(lo, hi)
        assert result.keys == sorted(k for k in keys if lo <= k < hi)

    def test_range_is_one_parallel_step(self):
        dst = DSTIndex(LocalDHT(8, 0), depth=8)
        rng = np.random.default_rng(0)
        for key in rng.random(300):
            dst.insert(float(key))
        result = dst.range_query(0.1, 0.8)
        assert result.parallel_steps == 1
        # canonical cover of any range at depth L has at most 2L segments
        assert result.dht_lookups <= 2 * 8

    def test_insert_cost_vs_lht(self):
        """The paper's §2 claim: DST insertion is maintenance-heavy."""
        from repro.core import IndexConfig, LHTIndex

        rng = np.random.default_rng(1)
        keys = [float(k) for k in rng.random(500)]
        dst = DSTIndex(LocalDHT(8, 0), depth=10)
        lht = LHTIndex(LocalDHT(8, 0), IndexConfig(theta_split=10))
        dst_cost = sum(dst.insert(k) for k in keys)
        lht_cost = sum(lht.insert(k).dht_lookups for k in keys)
        assert dst_cost > lht_cost

    def test_empty_range(self):
        dst = DSTIndex(LocalDHT(8, 0), depth=6)
        assert dst.range_query(0.4, 0.4).records == ()


class TestNaive:
    def test_exact_match_is_one_lookup(self):
        naive = NaiveIndex(LocalDHT(8, 0))
        naive.insert(0.42, "v")
        record, cost = naive.exact_match(0.42)
        assert record.value == "v" and cost == 1
        record, cost = naive.exact_match(0.43)
        assert record is None and cost == 1

    @given(st.lists(unit_floats, min_size=0, max_size=100, unique=True))
    def test_range_scan_matches_bruteforce(self, keys):
        dht = LocalDHT(16, 0)
        naive = NaiveIndex(dht)
        for key in keys:
            naive.insert(key)
        records, cost = naive.range_query(0.2, 0.7)
        assert [r.key for r in records] == sorted(
            k for k in keys if 0.2 <= k < 0.7
        )
        assert cost == dht.n_peers  # a broadcast: every peer contacted

    def test_range_cost_scales_with_network(self):
        small = NaiveIndex(LocalDHT(8, 0))
        large = NaiveIndex(LocalDHT(64, 0))
        assert small.range_query(0, 1)[1] == 8
        assert large.range_query(0, 1)[1] == 64
