"""Tests for min/max queries (paper §7, Theorem 3)."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core import IndexConfig, LHTIndex
from repro.dht import LocalDHT

unit_floats = st.floats(min_value=0.0, max_value=0.9999999, allow_nan=False)


def _build(keys, theta=4, merge=False):
    index = LHTIndex(
        LocalDHT(n_peers=16, seed=0),
        IndexConfig(theta_split=theta, max_depth=30, merge_enabled=merge),
    )
    for key in keys:
        index.insert(key)
    return index


class TestTheorem3:
    @given(st.lists(unit_floats, min_size=1, max_size=300))
    def test_min_max_correct(self, keys):
        index = _build(keys)
        assert index.min_query().record.key == min(keys)
        assert index.max_query().record.key == max(keys)

    @given(st.lists(unit_floats, min_size=20, max_size=300, unique=True))
    def test_single_lookup_on_grown_trees(self, keys):
        """One DHT-lookup whenever the extreme bucket holds a record —
        Theorem 3's setting.  (Heavily skewed splits can leave an edge
        bucket empty, in which case the query walks inward; correctness
        is covered by TestEmptyExtremeBuckets.)"""
        index = _build(keys)
        if index.leaf_count == 1:
            return
        ordered = index.leaf_labels()
        leftmost = index.dht.peek("#")
        rightmost = index.dht.peek("#0")
        assert leftmost.label == ordered[0]
        assert rightmost.label == ordered[-1]
        if len(leftmost):
            assert index.min_query().dht_lookups == 1
        if len(rightmost):
            assert index.max_query().dht_lookups == 1

    def test_single_leaf_tree_max_needs_repair(self):
        """With one leaf (#0 stored under '#'), the max query's probe of
        '#0' fails and is repaired with one extra lookup."""
        index = _build([0.3, 0.7])
        assert index.min_query().dht_lookups == 1
        assert index.max_query().dht_lookups == 2
        assert index.max_query().record.key == 0.7

    def test_empty_index(self):
        index = _build([])
        assert index.min_query().record is None
        assert index.max_query().record is None


class TestEmptyExtremeBuckets:
    def test_min_walks_past_emptied_leftmost_leaf(self):
        """Deleting everything in the leftmost bucket (merges disabled)
        leaves it empty; the min query walks inward."""
        keys = [i / 64 + 1e-6 for i in range(64)]
        index = _build(keys, theta=4)
        # delete the lowest quarter
        for key in keys[:16]:
            assert index.delete(key).deleted
        result = index.min_query()
        assert result.record.key == keys[16]
        assert result.dht_lookups >= 1

    def test_max_walks_past_emptied_rightmost_leaf(self):
        keys = [i / 64 + 1e-6 for i in range(64)]
        index = _build(keys, theta=4)
        for key in keys[48:]:
            assert index.delete(key).deleted
        result = index.max_query()
        assert result.record.key == keys[47]

    def test_fully_emptied_index_returns_none(self):
        keys = [i / 16 + 1e-6 for i in range(16)]
        index = _build(keys, theta=4)
        for key in keys:
            index.delete(key)
        assert index.min_query().record is None
        assert index.max_query().record is None
