"""Churn + lossy-substrate integration: resilience on vs off.

The end-to-end scenario the resilience layer exists for: an LHT over a
Chord ring that keeps churning (graceful joins/leaves, so the data and
the sanitizer's partition invariant survive) while the network drops a
fraction of replies.  The same seeded probe workload runs through both
arms — raw ``FaultyDHT`` and ``ResilientDHT``-wrapped — and the wrapped
arm must strictly dominate.

The whole module is sanitizer-compatible: run it under ``LHT_SANITIZE=1``
(the CI sanitized leg does) and every mutation is re-validated against
Theorems 1-2; one test forces the sanitizer on regardless of the
environment.
"""

from __future__ import annotations

import numpy as np

from repro.core import IndexConfig, IndexInspector, LHTIndex, MatchStatus
from repro.dht import ChordDHT, ChurnConfig, ChurnDriver, FaultyDHT
from repro.resilience import ResilientDHT, RetryPolicy
from repro.sim import Simulator
from repro.sim.rng import derive_seed

DROP_RATE = 0.2
N_KEYS = 300
DURATION = 20.0


def _run_arm(resilient: bool, seed: int = 0):
    """One churn arm; returns (index, keys, churn driver, chord)."""
    chord = ChordDHT(n_peers=24, seed=seed)
    faulty = FaultyDHT(chord, seed=derive_seed(seed, "faults"))
    dht = (
        ResilientDHT(faulty, seed=derive_seed(seed, "retries"))
        if resilient
        else faulty
    )
    index = LHTIndex(dht, IndexConfig(theta_split=10, max_depth=20))
    keys = [float(k) for k in np.random.default_rng(seed).random(N_KEYS)]
    for key in keys:  # routed inserts, still fault-free
        index.insert(key)

    sim = Simulator()
    driver = ChurnDriver(
        chord,
        sim,
        np.random.default_rng(derive_seed(seed, "churn")),
        ChurnConfig(
            join_rate=0.4,
            leave_rate=0.4,
            crash_fraction=0.0,  # graceful: single-replica data survives
            min_peers=8,
        ),
    )
    driver.start(until=DURATION)
    sim.run_until(DURATION)

    faulty.get_drop_rate = DROP_RATE  # the network turns lossy post-churn
    return index, keys, driver, chord


def _success_rate(index: LHTIndex, keys: list[float]) -> float:
    hits = sum(
        index.exact_match_checked(key).status is MatchStatus.PRESENT
        for key in keys
    )
    return hits / len(keys)


class TestChurnWithResilience:
    def test_resilience_dominates_under_churn_and_drops(self):
        with_r, keys, driver, chord = _run_arm(resilient=True)
        without_r, keys2, _, _ = _run_arm(resilient=False)
        assert keys == keys2  # same seeded workload in both arms
        assert driver.joins + driver.leaves > 0
        chord.check_ring()

        rate_on = _success_rate(with_r, keys)
        rate_off = _success_rate(without_r, keys)
        # Graceful churn loses nothing, so failures are all drop-induced:
        # the retry budget must close nearly all of them.
        assert rate_on >= 0.99, (rate_on, rate_off)
        assert rate_off <= 0.85, (rate_on, rate_off)
        assert rate_on > rate_off

    def test_degraded_queries_stay_safe_after_churn(self):
        index, keys, _, _ = _run_arm(resilient=True)
        truth = sorted(k for k in keys if 0.25 <= k < 0.75)
        result = index.range_query(0.25, 0.75, degraded=True)
        assert set(result.keys) <= set(truth)
        if result.complete:
            assert result.keys == truth
        else:
            got = set(result.keys)
            for key in set(truth) - got:
                assert any(r.contains(key) for r in result.unreachable)

    def test_structure_survives_with_sanitizer_forced_on(self):
        """The full arm replays green with the runtime sanitizer active."""
        chord = ChordDHT(n_peers=24, seed=1)
        faulty = FaultyDHT(chord, seed=derive_seed(1, "faults"))
        dht = ResilientDHT(faulty, seed=derive_seed(1, "retries"))
        index = LHTIndex(
            dht, IndexConfig(theta_split=10, max_depth=20, sanitize=True)
        )
        keys = [float(k) for k in np.random.default_rng(1).random(150)]
        for key in keys:
            index.insert(key)  # each insert re-validates Theorems 1-2
        sim = Simulator()
        driver = ChurnDriver(
            chord,
            sim,
            np.random.default_rng(derive_seed(1, "churn")),
            ChurnConfig(join_rate=0.4, leave_rate=0.4, crash_fraction=0.0, min_peers=8),
        )
        driver.start(until=DURATION)
        sim.run_until(DURATION)
        IndexInspector(chord).verify()
        for key in keys[::10]:
            assert index.delete(key).deleted  # sanitized mutations post-churn
        IndexInspector(chord).verify()


class TestResilientDeterminism:
    def test_resilient_substrate_replays_bit_identically(
        self, assert_deterministic
    ):
        """The determinism harness covers the full resilient stack."""
        assert_deterministic(substrate="resilient-local", seed=5, n_ops=200)
