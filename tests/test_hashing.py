"""Unit tests for consistent-hashing primitives."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.dht.hashing import (
    ID_BITS,
    ID_SPACE,
    hash_key,
    in_half_open_interval,
    in_open_interval,
    ring_distance,
)

ids = st.integers(0, 255)


class TestHashKey:
    def test_deterministic(self):
        assert hash_key("abc") == hash_key("abc")
        assert hash_key("abc") != hash_key("abd")

    def test_range(self):
        assert 0 <= hash_key("x") < ID_SPACE

    def test_truncation(self):
        assert 0 <= hash_key("x", bits=16) < (1 << 16)
        assert hash_key("x", bits=16) == hash_key("x") >> (ID_BITS - 16)


class TestRingDistance:
    def test_forward(self):
        assert ring_distance(2, 5, space=16) == 3

    def test_wraparound(self):
        assert ring_distance(14, 2, space=16) == 4

    def test_self(self):
        assert ring_distance(7, 7, space=16) == 0

    @given(ids, ids)
    def test_antisymmetric_modulo(self, a, b):
        space = 256
        if a != b:
            assert ring_distance(a, b, space) + ring_distance(b, a, space) == space


class TestIntervals:
    def test_open_interval_simple(self):
        assert in_open_interval(3, 2, 5, space=16)
        assert not in_open_interval(2, 2, 5, space=16)
        assert not in_open_interval(5, 2, 5, space=16)

    def test_open_interval_wraps(self):
        assert in_open_interval(15, 14, 2, space=16)
        assert in_open_interval(1, 14, 2, space=16)
        assert not in_open_interval(5, 14, 2, space=16)

    def test_degenerate_open_interval_is_whole_ring(self):
        # (x, x) on a ring means "everything except x" — Chord's
        # single-node convention.
        assert in_open_interval(5, 3, 3, space=16)
        assert not in_open_interval(3, 3, 3, space=16)

    def test_half_open_includes_upper(self):
        assert in_half_open_interval(5, 2, 5, space=16)
        assert not in_half_open_interval(2, 2, 5, space=16)

    def test_half_open_degenerate_is_everything(self):
        assert in_half_open_interval(9, 4, 4, space=16)

    @given(ids, ids, ids)
    def test_open_matches_linear_scan(self, x, lo, hi):
        space = 256
        expected = False
        cursor = (lo + 1) % space
        while cursor != hi and cursor != lo:
            if cursor == x:
                expected = True
                break
            cursor = (cursor + 1) % space
        if lo == hi:
            expected = x != lo
        assert in_open_interval(x, lo, hi, space) == expected
