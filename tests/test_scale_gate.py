"""Tests for the benchgate ``scale`` suite (``BENCH_scale.json``).

The scale gate differs from the count gates in two ways — its baseline
file holds one section per workload shape, and its wall-clock block is
gated at the wide per-shape :data:`~repro.devtools.benchgate.SCALE_WALL_TOLERANCE`
band instead of the 10% count tolerance.  The unmarked tests pin that
logic with a stubbed measurement (no 2^20-key build in tier-1); the
``bench``-marked test re-measures the smoke shape against the checked-in
baseline exactly like the CI leg does.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools import benchgate

_ROOT = Path(__file__).resolve().parent.parent


def _fake_scale(
    profile: str = "smoke",
    *,
    build_s: float = 0.02,
    leaves: float = 255.0,
) -> dict:
    return {
        "profile": profile,
        "params": {"seed": 1, "n_keys": 123},
        "counts": {"leaves": leaves, "lookup_gets": 100.0},
        "wall_s": {"build_s": build_s, "lookup_s": 0.01},
        "info": {"build_speedup_vs_pre_pr": 4.0},
    }


class TestCheckScale:
    def test_missing_baseline_reports_write_hint(self, tmp_path):
        failures = benchgate._check_scale(
            tmp_path / "BENCH_scale.json", _fake_scale()
        )
        assert failures and "baseline missing" in failures[0]

    def test_missing_profile_section_fails(self, tmp_path):
        path = tmp_path / "BENCH_scale.json"
        benchgate._write_scale(path, _fake_scale("smoke"))
        failures = benchgate._check_scale(path, _fake_scale("full"))
        assert failures and "no baseline for profile 'full'" in failures[0]

    def test_write_then_check_round_trips(self, tmp_path):
        path = tmp_path / "BENCH_scale.json"
        benchgate._write_scale(path, _fake_scale())
        assert benchgate._check_scale(path, _fake_scale()) == []

    def test_write_merges_profiles_without_discarding(self, tmp_path):
        path = tmp_path / "BENCH_scale.json"
        benchgate._write_scale(path, _fake_scale("full"))
        benchgate._write_scale(path, _fake_scale("smoke"))
        data = json.loads(path.read_text())
        assert set(data["profiles"]) == {"full", "smoke"}

    def test_wall_clock_within_wide_band_passes(self, tmp_path):
        """Smoke wall seconds may drift up to 4x before the gate trips."""
        path = tmp_path / "BENCH_scale.json"
        benchgate._write_scale(path, _fake_scale(build_s=0.02))
        assert (
            benchgate._check_scale(path, _fake_scale(build_s=0.079)) == []
        )

    def test_wall_clock_regression_beyond_band_fails(self, tmp_path):
        path = tmp_path / "BENCH_scale.json"
        benchgate._write_scale(path, _fake_scale(build_s=0.02))
        failures = benchgate._check_scale(path, _fake_scale(build_s=0.09))
        assert failures and "build_s" in failures[0]

    def test_count_drift_uses_tight_tolerance(self, tmp_path):
        """Counts are exact reproductions: a 20% leaf-count change fails
        even though it is far inside the wall-clock band."""
        path = tmp_path / "BENCH_scale.json"
        benchgate._write_scale(path, _fake_scale(leaves=255.0))
        failures = benchgate._check_scale(path, _fake_scale(leaves=306.0))
        assert failures and "leaves" in failures[0]

    def test_changed_params_demand_refresh(self, tmp_path):
        path = tmp_path / "BENCH_scale.json"
        benchgate._write_scale(path, _fake_scale())
        current = _fake_scale()
        current["params"]["n_keys"] = 456
        failures = benchgate._check_scale(path, current)
        assert failures and "parameters changed" in failures[0]


class TestCliExitCodes:
    def _run(self, monkeypatch, tmp_path, measured: dict, argv: list[str]):
        monkeypatch.setattr(
            benchgate, "SCALE_BASELINE", tmp_path / "BENCH_scale.json"
        )
        monkeypatch.setattr(
            benchgate,
            "measure_scale",
            lambda seed, profile: dict(measured, profile=profile),
        )
        return benchgate.main(argv)

    def test_missing_baseline_exits_nonzero(self, monkeypatch, tmp_path):
        code = self._run(
            monkeypatch,
            tmp_path,
            _fake_scale(),
            ["--check", "--only", "scale", "--scale-profile", "smoke"],
        )
        assert code == 1

    def test_write_then_check_exits_zero(self, monkeypatch, tmp_path):
        argv = ["--only", "scale", "--scale-profile", "smoke"]
        assert self._run(
            monkeypatch, tmp_path, _fake_scale(), ["--write", *argv]
        ) == 0
        assert self._run(
            monkeypatch, tmp_path, _fake_scale(), ["--check", *argv]
        ) == 0

    def test_regression_exits_nonzero(self, monkeypatch, tmp_path):
        argv = ["--only", "scale", "--scale-profile", "smoke"]
        assert self._run(
            monkeypatch, tmp_path, _fake_scale(), ["--write", *argv]
        ) == 0
        code = self._run(
            monkeypatch,
            tmp_path,
            _fake_scale(build_s=0.09),
            ["--check", *argv],
        )
        assert code == 1


class TestCheckedInBaseline:
    def test_scale_baseline_parses_with_both_profiles(self):
        path = _ROOT / "BENCH_scale.json"
        assert path.exists(), "BENCH_scale.json missing — run benchgate --write"
        data = json.loads(path.read_text())
        assert set(data) == {"profiles"}
        assert set(data["profiles"]) == {"full", "smoke"}
        for section in data["profiles"].values():
            assert set(section) == {"params", "counts", "wall_s", "info"}
            assert set(section["wall_s"]) == {"build_s", "lookup_s", "range_s"}
            assert all(
                isinstance(v, (int, float)) for v in section["counts"].values()
            )
            assert all(v > 0 for v in section["wall_s"].values())

    def test_full_profile_banks_the_required_speedup(self):
        """The PR's acceptance number, pinned: the banked full-scale run
        records >= 2x on both the build and lookup phases vs pre-PR."""
        data = json.loads((_ROOT / "BENCH_scale.json").read_text())
        info = data["profiles"]["full"]["info"]
        assert info["build_speedup_vs_pre_pr"] >= 2.0
        assert info["lookup_speedup_vs_pre_pr"] >= 2.0

    def test_full_profile_is_paper_scale(self):
        data = json.loads((_ROOT / "BENCH_scale.json").read_text())
        params = data["profiles"]["full"]["params"]
        assert params["n_keys"] == 1 << 20
        assert params["n_peers"] >= 1024


@pytest.mark.bench
class TestScaleGate:
    def test_smoke_scale_within_tolerance(self):
        """The CI smoke leg's check, as a bench-marked pytest."""
        current = benchgate.measure_scale(profile="smoke")
        failures = benchgate._check_scale(_ROOT / "BENCH_scale.json", current)
        assert not failures, "\n".join(failures)
