"""Guards against ``__dict__`` creeping back onto hot-path objects.

The hot-path overhaul put ``__slots__`` (or slotted dataclasses) on
every object allocated per record, per request, or per routing step —
at 2^20 keys a stray instance ``__dict__`` costs tens of MB and a
measurable fraction of build time.  An innocent-looking edit (adding a
``@cached_property``, dropping ``slots=True`` while touching fields)
silently reintroduces it, so this test enumerates the hot classes and
rejects any instance that grew a ``__dict__``.
"""

from __future__ import annotations

import pytest

from repro.cache.leafcache import LeafCache
from repro.core.bucket import LeafBucket, Record
from repro.core.bulkbuild import BulkPlan
from repro.core.interval import DyadicInterval, Range
from repro.core.label import Label
from repro.devtools.profile import PhaseResult
from repro.dht.can import CANNode, Zone
from repro.dht.chord import ChordNode
from repro.dht.kademlia import KademliaNode
from repro.dht.kernel import PeerStore
from repro.dht.koorde import KoordeNode
from repro.dht.onehop import OneHopNode
from repro.dht.pastry import PastryNode
from repro.dht.tapestry import TapestryNode
from repro.serve.service import BatchResult, Request, RequestKind, Response, Status

#: Every hot class, with a constructor call producing a live instance.
_HOT_INSTANCES = {
    "Record": lambda: Record(0.5),
    "LeafBucket": lambda: LeafBucket(Label("0")),
    "Label": lambda: Label("01"),
    "DyadicInterval": lambda: DyadicInterval(1, 2),
    "Range": lambda: Range(0.25, 0.5),
    "BulkPlan": lambda: BulkPlan({}, set(), (), 0),
    "PeerStore": lambda: PeerStore(),
    "ChordNode": lambda: ChordNode(id=1),
    "OneHopNode": lambda: OneHopNode(id=1),
    "KoordeNode": lambda: KoordeNode(id=1),
    "KademliaNode": lambda: KademliaNode(id=1),
    "PastryNode": lambda: PastryNode(id=1),
    "CANNode": lambda: CANNode(id=1, zone=Zone(lows=(0.0,), highs=(1.0,))),
    "TapestryNode": lambda: TapestryNode(id=1),
    "LeafCache": lambda: LeafCache(capacity=4),
    "Request": lambda: Request(kind=RequestKind.LOOKUP, key=0.5),
    "Response": lambda: Response(status=Status.OK),
    "BatchResult": lambda: BatchResult(
        responses=[], rounds=0, routed_ops=0, coalesced_saved=0
    ),
    "PhaseResult": lambda: PhaseResult(name="build", seconds=0.0, counts={}),
}


@pytest.mark.parametrize("name", sorted(_HOT_INSTANCES))
def test_hot_object_has_no_instance_dict(name):
    obj = _HOT_INSTANCES[name]()
    assert not hasattr(obj, "__dict__"), (
        f"{name} grew an instance __dict__ — a hot-path class lost its "
        "__slots__ (or a dataclass lost slots=True)"
    )


@pytest.mark.parametrize("name", sorted(_HOT_INSTANCES))
def test_hot_object_rejects_ad_hoc_attributes(name):
    """The behavioural face of the same guard: slotted objects refuse
    attributes outside their declared fields.  (Frozen slotted
    dataclasses surface the refusal as TypeError from their generated
    ``__setattr__`` on this interpreter; plain slots raise
    AttributeError.)"""
    obj = _HOT_INSTANCES[name]()
    with pytest.raises((AttributeError, TypeError)):
        obj.sneaky_new_attribute = 1
