"""Tests for the linear-lookup ablation variants (LHT and PHT)."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.pht import PHTIndex
from repro.core import IndexConfig, LHTIndex, lht_lookup, lht_lookup_linear
from repro.dht import LocalDHT

unit_floats = st.floats(min_value=0.0, max_value=0.9999999, allow_nan=False)


def _lht(keys, theta=4, depth=20):
    index = LHTIndex(LocalDHT(16, 0), IndexConfig(theta_split=theta, max_depth=depth))
    for key in keys:
        index.insert(key)
    return index


class TestLHTLinear:
    @given(st.lists(unit_floats, min_size=1, max_size=250), unit_floats)
    def test_agrees_with_binary_search(self, keys, probe):
        index = _lht(keys)
        binary = lht_lookup(index.dht, index.config, probe)
        linear = lht_lookup_linear(index.dht, index.config, probe)
        assert linear.found and binary.found
        assert linear.bucket.label == binary.bucket.label
        assert linear.name == binary.name

    def test_linear_probes_never_fail(self):
        """Every linear probe hits an existing internal node's name."""
        rng = np.random.default_rng(0)
        index = _lht([float(k) for k in rng.random(500)])
        for probe in rng.random(100):
            result = lht_lookup_linear(index.dht, index.config, float(probe))
            assert result.found
            for name in result.probed:
                assert index.dht.peek(str(name)) is not None

    def test_binary_beats_linear_on_deep_trees(self):
        rng = np.random.default_rng(1)
        index = _lht([float(k) for k in rng.random(4000)], theta=4, depth=24)
        probes = [float(k) for k in rng.random(300)]
        binary_cost = sum(
            lht_lookup(index.dht, index.config, p).dht_lookups for p in probes
        )
        linear_cost = sum(
            lht_lookup_linear(index.dht, index.config, p).dht_lookups
            for p in probes
        )
        assert binary_cost < linear_cost

    def test_single_leaf(self):
        index = _lht([0.5])
        result = lht_lookup_linear(index.dht, index.config, 0.3)
        assert result.found and result.dht_lookups == 1


class TestPHTLinear:
    @given(st.lists(unit_floats, min_size=1, max_size=200), unit_floats)
    def test_agrees_with_binary_search(self, keys, probe):
        index = PHTIndex(
            LocalDHT(16, 0), IndexConfig(theta_split=4, max_depth=20)
        )
        for key in keys:
            index.insert(key)
        binary = index.lookup(probe)
        linear = index.lookup_linear(probe)
        assert binary.found and linear.found
        assert binary.node.label == linear.node.label

    def test_linear_cost_equals_leaf_length(self):
        rng = np.random.default_rng(2)
        index = PHTIndex(
            LocalDHT(16, 0), IndexConfig(theta_split=8, max_depth=20)
        )
        for key in rng.random(800):
            index.insert(float(key))
        for probe in rng.random(50):
            result = index.lookup_linear(float(probe))
            assert result.dht_lookups == result.node.label.length - 1
