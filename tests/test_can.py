"""Tests for the CAN substrate (zones, greedy routing, membership)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IndexConfig, IndexInspector, LHTIndex
from repro.dht.can import CANDHT, Zone, _try_merge
from repro.errors import ConfigurationError, EmptyOverlayError


class TestZone:
    def test_contains_half_open(self):
        zone = Zone((0.0, 0.0), (0.5, 0.5))
        assert zone.contains((0.0, 0.49))
        assert not zone.contains((0.5, 0.25))

    def test_split_halves(self):
        zone = Zone((0.0, 0.0), (1.0, 1.0))
        lower, upper = zone.split(0)
        assert lower.highs[0] == upper.lows[0] == 0.5
        assert lower.volume() + upper.volume() == pytest.approx(1.0)

    def test_distance_zero_inside(self):
        zone = Zone((0.25, 0.25), (0.5, 0.5))
        assert zone.distance_to((0.3, 0.3)) == 0.0
        assert zone.distance_to((0.6, 0.3)) > 0.0

    def test_torus_distance_wraps(self):
        zone = Zone((0.9, 0.0), (1.0, 1.0))
        # point at x=0.05 is 0.15 away across the wrap, not 0.85
        assert zone.distance_to((0.05, 0.5)) < 0.15**2 + 1e-9

    def test_adjacency(self):
        left = Zone((0.0, 0.0), (0.5, 1.0))
        right = Zone((0.5, 0.0), (1.0, 1.0))
        assert left.adjacent(right)
        assert right.adjacent(left)  # also via the torus wrap at x=0/1

    def test_non_adjacent(self):
        a = Zone((0.0, 0.0), (0.25, 0.25))
        b = Zone((0.5, 0.5), (0.75, 0.75))
        assert not a.adjacent(b)

    def test_try_merge(self):
        lower, upper = Zone((0.0, 0.0), (1.0, 1.0)).split(1)
        merged = _try_merge(lower, upper)
        assert merged == Zone((0.0, 0.0), (1.0, 1.0))
        quarter = lower.split(0)[0]
        assert _try_merge(quarter, upper) is None


class TestCANDHT:
    def test_partition_invariant(self):
        CANDHT(n_peers=50, seed=0).check_partition()
        CANDHT(n_peers=17, seed=3, dims=3).check_partition()

    def test_routing_matches_placement(self):
        dht = CANDHT(n_peers=40, seed=1)
        for i in range(200):
            key = f"k{i}"
            owner, hops = dht.route(key)
            assert owner == dht.peer_of(key)
            assert hops >= 1

    def test_put_get_remove(self):
        dht = CANDHT(n_peers=25, seed=2)
        dht.put("a", "x")
        assert dht.get("a") == "x"
        assert dht.get("b") is None
        assert dht.remove("a") == "x"

    def test_hops_scale_sublinearly(self):
        dht = CANDHT(n_peers=256, seed=4)
        total = 0
        for i in range(100):
            _, hops = dht.route(f"k{i}")
            total += hops
        # CAN: O(d * n^(1/d)) = O(2 * 16) for d=2, n=256; generous bound
        assert total / 100 < 40

    def test_join_transfers_keys(self):
        dht = CANDHT(n_peers=10, seed=5)
        for i in range(200):
            dht.put(f"k{i}", i)
        dht.join()
        dht.check_partition()
        for i in range(200):
            assert dht.get(f"k{i}") == i

    def test_buddy_leave(self):
        dht = CANDHT(n_peers=2, seed=6)
        for i in range(50):
            dht.put(f"k{i}", i)
        victim = dht.node_ids[1]
        assert dht.leave(victim)
        dht.check_partition()
        assert dht.n_peers == 1
        for i in range(50):
            assert dht.get(f"k{i}") == i

    def test_leave_refusal_keeps_partition_intact(self):
        dht = CANDHT(n_peers=7, seed=7)
        before = dht.n_peers
        outcomes = [dht.leave(nid) for nid in list(dht.node_ids)]
        # each successful leave removes exactly one node
        assert dht.n_peers == before - sum(outcomes)
        dht.check_partition()  # refused leaves must not corrupt zones

    def test_cannot_remove_last(self):
        dht = CANDHT(n_peers=1, seed=8)
        with pytest.raises(EmptyOverlayError):
            dht.leave(dht.node_ids[0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CANDHT(n_peers=0)
        with pytest.raises(ConfigurationError):
            CANDHT(n_peers=4, dims=0)

    def test_local_write(self):
        dht = CANDHT(n_peers=8, seed=9)
        dht.put("k", [1])
        dht.local_write("k", [1, 2])
        assert dht.peek("k") == [1, 2]


class TestLHTOverCAN:
    def test_full_index_battery(self):
        dht = CANDHT(n_peers=30, seed=0)
        index = LHTIndex(dht, IndexConfig(theta_split=10, max_depth=20))
        keys = [float(k) for k in np.random.default_rng(0).random(500)]
        for key in keys:
            index.insert(key)
        IndexInspector(dht).verify()
        assert index.range_query(0.2, 0.6).keys == sorted(
            k for k in keys if 0.2 <= k < 0.6
        )
        assert index.min_query().record.key == min(keys)
        assert index.max_query().record.key == max(keys)

    def test_index_counts_match_other_substrates(self):
        from repro.dht import LocalDHT

        keys = [float(k) for k in np.random.default_rng(1).random(400)]
        config = IndexConfig(theta_split=10, max_depth=20)
        over_can = LHTIndex(CANDHT(n_peers=16, seed=0), config)
        over_local = LHTIndex(LocalDHT(16, 0), config)
        for key in keys:
            over_can.insert(key)
            over_local.insert(key)
        assert (
            over_can.ledger.maintenance_lookups
            == over_local.ledger.maintenance_lookups
        )
        probes = [float(p) for p in np.random.default_rng(2).random(50)]
        can_costs = [over_can.lookup(p).dht_lookups for p in probes]
        local_costs = [over_local.lookup(p).dht_lookups for p in probes]
        assert can_costs == local_costs


class TestZoneProperties:
    """Hypothesis checks on zone geometry under random split sequences."""

    def test_random_split_sequences_partition_space(self):
        from hypothesis import given, strategies as st

        @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 1)),
                        max_size=30))
        def run(steps):
            zones = [Zone((0.0, 0.0), (1.0, 1.0))]
            for index, dim in steps:
                target = zones.pop(index % len(zones))
                zones.extend(target.split(dim))
            total = sum(z.volume() for z in zones)
            assert abs(total - 1.0) < 1e-9
            # random probes land in exactly one zone
            rng = np.random.default_rng(0)
            for probe in rng.random((20, 2)):
                point = (float(probe[0]), float(probe[1]))
                assert sum(z.contains(point) for z in zones) == 1

        run()

    def test_adjacency_is_symmetric(self):
        from hypothesis import given, strategies as st

        zones_strategy = st.builds(
            lambda x0, y0, wx, wy: Zone(
                (x0 / 8, y0 / 8),
                (min(1.0, x0 / 8 + wx / 8), min(1.0, y0 / 8 + wy / 8)),
            ),
            st.integers(0, 6),
            st.integers(0, 6),
            st.integers(1, 2),
            st.integers(1, 2),
        )

        @given(zones_strategy, zones_strategy)
        def run(a, b):
            assert a.adjacent(b) == b.adjacent(a)

        run()
