"""Unit and acceptance tests for the resilience layer.

Covers the retry policy algebra, the circuit-breaker state machine, the
``ResilientDHT`` wrapper's recovery semantics (including what must NOT
feed the breaker), degraded-mode query results, and the headline
acceptance criterion: at a 0.2 get-drop rate the default retry budget
lifts a seeded exact-match workload from well under 85% success to at
least 99%.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IndexConfig, LHTIndex, MatchStatus
from repro.dht import FaultyDHT, LocalDHT, ReplicatedDHT
from repro.errors import CircuitOpenError, ConfigurationError, DHTError
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    DEFAULT_RETRY_POLICY,
    NO_RETRY_POLICY,
    RetryPolicy,
    ResilientDHT,
)
from repro.sim.clock import Clock


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_defaults_are_sane(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 5
        assert policy.max_retries == 4
        assert NO_RETRY_POLICY.max_retries == 0
        assert DEFAULT_RETRY_POLICY == RetryPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"multiplier": 0.5},
            {"max_delay": -1.0},
            {"jitter": 1.5},
            {"jitter": -0.1},
            {"timeout_budget": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        rng = np.random.default_rng(0)
        delays = [policy.backoff(r, rng) for r in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_seeded(self):
        policy = RetryPolicy(jitter=0.5)
        a = [policy.backoff(r, np.random.default_rng(7)) for r in range(4)]
        b = [policy.backoff(r, np.random.default_rng(7)) for r in range(4)]
        assert a == b
        base = RetryPolicy(jitter=0.0)
        rng = np.random.default_rng(7)
        for retry, delay in enumerate(a):
            ceiling = base.backoff(retry, rng)
            assert 0.5 * ceiling <= delay <= ceiling

    def test_residual_failure(self):
        assert RetryPolicy(max_attempts=5).residual_failure(0.2) == pytest.approx(
            0.2**5
        )
        assert NO_RETRY_POLICY.residual_failure(0.2) == pytest.approx(0.2)


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        assert breaker.state is BreakerState.CLOSED
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # third in a row trips
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allows()
        assert breaker.trips == 1

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED  # streak was broken

    def test_half_open_after_cooldown(self):
        clock = Clock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance_to(9.0)
        assert not breaker.allows()
        clock.advance_to(10.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allows()

    def test_half_open_trial_outcomes(self):
        clock = Clock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance_to(5.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.record_failure()  # failed trial re-opens
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2
        clock.advance_to(10.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(reset_timeout=0.0)


# ----------------------------------------------------------------------
# ResilientDHT
# ----------------------------------------------------------------------


def _stack(
    drop: float = 0.0,
    put_fail: float = 0.0,
    policy: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    seed: int = 0,
) -> tuple[ResilientDHT, FaultyDHT]:
    faulty = FaultyDHT(
        LocalDHT(8, 0),
        get_drop_rate=drop,
        put_fail_rate=put_fail,
        seed=seed,
    )
    return ResilientDHT(faulty, policy=policy, breaker=breaker, seed=seed), faulty


class TestResilientDHT:
    def test_transparent_when_fault_free(self):
        dht, _ = _stack()
        dht.put("k", 1)
        assert dht.get("k") == 1
        assert dht.remove("k") == 1
        # Successful operations never retry...
        assert dht.retries == 0
        assert dht.metrics.retries == 0
        # ...but a miss must exhaust the attempt budget: the wrapper
        # cannot distinguish "absent" from "dropped reply".
        assert dht.get("k") is None
        assert dht.retries == dht.policy.max_retries
        assert dht.exhausted_gets == 1

    def test_get_retries_recover_dropped_replies(self):
        dht, faulty = _stack(drop=0.5, seed=3)
        dht.put("k", "v")
        recovered = 0
        for _ in range(200):
            if dht.get("k") == "v":
                recovered += 1
        # residual false-absence = 0.5^5 ≈ 3% per call
        assert recovered >= 185
        assert dht.confirmed_drops > 0
        assert faulty.dropped_gets > 0
        assert dht.metrics.retries == dht.retries > 0

    def test_genuine_miss_stays_a_miss(self):
        dht, _ = _stack(drop=0.3, seed=1)
        for _ in range(50):
            assert dht.get("never-stored") is None
        assert dht.exhausted_gets == 50
        # Ambiguous None-gets never feed the breaker.
        assert dht.breaker.state is BreakerState.CLOSED
        assert dht.metrics.breaker_trips == 0

    def test_put_retries_then_raises(self):
        policy = RetryPolicy(max_attempts=3, timeout_budget=None)
        dht, faulty = _stack(put_fail=1.0, policy=policy)
        with pytest.raises(DHTError):
            dht.put("k", 1)
        assert faulty.failed_puts == 3  # every attempt reached the substrate
        assert dht.retries == 2
        assert dht.metrics.failed_puts == 3

    def test_breaker_trips_and_fails_fast(self):
        policy = RetryPolicy(max_attempts=2, timeout_budget=None)
        breaker = CircuitBreaker(failure_threshold=4, reset_timeout=1e9)
        dht, faulty = _stack(put_fail=1.0, policy=policy, breaker=breaker)
        with pytest.raises(DHTError):
            dht.put("a", 1)  # 2 failures
        with pytest.raises(DHTError):
            dht.put("b", 2)  # 2 more: trips at 4
        assert dht.breaker.state is BreakerState.OPEN
        assert dht.metrics.breaker_trips == 1
        routed = faulty.failed_puts
        with pytest.raises(CircuitOpenError):
            dht.put("c", 3)
        assert faulty.failed_puts == routed  # rejected without routing
        assert dht.rejections == 1
        assert dht.metrics.breaker_rejections == 1
        # An open breaker also rejects gets and removes.
        with pytest.raises(CircuitOpenError):
            dht.get("a")
        with pytest.raises(CircuitOpenError):
            dht.remove("a")

    def test_breaker_recovers_via_half_open(self):
        policy = RetryPolicy(max_attempts=1, timeout_budget=None)
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=10.0)
        dht, faulty = _stack(put_fail=1.0, policy=policy, breaker=breaker)
        assert dht.clock is breaker.clock  # wrapper adopts the breaker's clock
        for key in ("a", "b"):
            with pytest.raises(DHTError):
                dht.put(key, 0)
        assert not dht.breaker.allows()
        # While the fault persists: fast rejections, with one half-open
        # trial per cool-down that fails and re-opens the breaker.
        # op_tick=1.0 per operation walks the private clock forward.
        for _ in range(15):
            with pytest.raises(DHTError):  # CircuitOpenError or trial failure
                dht.put("c", 0)
        assert dht.rejections > 0
        assert dht.clock.now >= breaker.reset_timeout
        # The fault heals: the next half-open trial succeeds and closes.
        faulty.put_fail_rate = 0.0
        for _ in range(15):
            try:
                dht.put("d", 4)
                break
            except CircuitOpenError:
                continue
        assert dht.breaker.state is BreakerState.CLOSED
        assert dht.get("d") == 4

    def test_timeout_budget_caps_attempts(self):
        policy = RetryPolicy(
            max_attempts=10,
            base_delay=1.0,
            multiplier=2.0,
            max_delay=100.0,
            jitter=0.0,
            timeout_budget=4.0,
        )
        dht, faulty = _stack(put_fail=1.0, policy=policy)
        with pytest.raises(DHTError):
            dht.put("k", 1)
        # delays 1, 2 spend 3.0; the next (4.0) would exceed the budget.
        assert faulty.failed_puts == 3

    def test_stacks_over_replication(self):
        chord = LocalDHT(8, 0)
        faulty = FaultyDHT(chord, get_drop_rate=0.4, seed=5)
        stack = ResilientDHT(ReplicatedDHT(faulty, 2), seed=5)
        stack.put("k", "v")
        hits = sum(stack.get("k") == "v" for _ in range(100))
        assert hits >= 99
        # All layers share one recorder.
        assert stack.metrics is faulty.metrics is chord.metrics

    def test_deterministic_replay(self):
        def run() -> tuple:
            dht, _ = _stack(drop=0.4, seed=11)
            dht.put("k", 1)
            outcomes = tuple(dht.get("k") for _ in range(50))
            return outcomes, dht.retries, dht.confirmed_drops, dht.clock.now

        assert run() == run()

    def test_oracle_access_is_never_shielded(self):
        dht, faulty = _stack(drop=1.0)
        dht.put("k", 7)
        before = dht.metrics.snapshot()
        assert dht.peek("k") == 7
        assert "k" in list(dht.keys())
        assert (dht.metrics.snapshot() - before).gets == 0
        assert dht.n_peers == faulty.n_peers


# ----------------------------------------------------------------------
# Degraded-mode queries
# ----------------------------------------------------------------------


def _lossy_index(
    drop: float, seed: int = 0, n_keys: int = 300
) -> tuple[LHTIndex, FaultyDHT, list[float]]:
    faulty = FaultyDHT(LocalDHT(8, 0), seed=seed)
    index = LHTIndex(faulty, IndexConfig(theta_split=8))
    keys = [float(k) for k in np.random.default_rng(seed).random(n_keys)]
    index.bulk_load(keys)
    faulty.get_drop_rate = drop
    return index, faulty, keys


class TestDegradedQueries:
    def test_exact_match_checked_trichotomy(self):
        index, faulty, keys = _lossy_index(0.0)
        present = index.exact_match_checked(keys[0])
        assert present.status is MatchStatus.PRESENT
        assert present.found and present.decided
        assert present.record is not None and present.record.key == keys[0]
        absent = index.exact_match_checked(0.123456789)
        assert absent.status is MatchStatus.ABSENT
        assert absent.decided and not absent.found
        faulty.get_drop_rate = 1.0
        lost = index.exact_match_checked(keys[0])
        assert lost.status is MatchStatus.UNREACHABLE
        assert not lost.decided
        assert index.dht.metrics.degraded_responses > 0

    def test_exact_match_checked_never_lies(self):
        index, _, keys = _lossy_index(0.3, seed=2)
        stored = set(keys)
        for key in keys[:120]:
            result = index.exact_match_checked(key)
            # A drop may make the answer undecidable, never wrong.
            assert result.status is not MatchStatus.ABSENT
            if result.status is MatchStatus.PRESENT:
                assert result.record is not None
                assert result.record.key == key
                assert key in stored

    def test_degraded_range_query_declares_its_gaps(self):
        index, faulty, keys = _lossy_index(0.25, seed=4)
        truth = sorted(k for k in keys if 0.1 <= k < 0.9)
        saw_incomplete = False
        for trial in range(20):
            result = index.range_query(0.1, 0.9, degraded=True)
            got = set(result.keys)
            assert got <= set(truth)  # never wrong, never out of range
            if result.complete:
                assert not result.unreachable
                assert result.keys == truth
            else:
                saw_incomplete = True
                assert result.unreachable
                missing = [k for k in truth if k not in got]
                for key in missing:
                    assert any(r.contains(key) for r in result.unreachable)
        assert saw_incomplete  # at 25% drop, 20 trials must hit gaps

    def test_clean_range_query_is_complete(self):
        index, _, keys = _lossy_index(0.0)
        result = index.range_query(0.2, 0.7, degraded=True)
        assert result.complete and result.unreachable == ()
        assert result.keys == sorted(k for k in keys if 0.2 <= k < 0.7)

    def test_non_degraded_still_raises(self):
        index, faulty, _ = _lossy_index(1.0, seed=6)
        with pytest.raises(Exception):
            while True:  # pragma: no branch - raises on first failed get
                index.range_query(0.0, 1.0)

    def test_degraded_minmax(self):
        index, faulty, keys = _lossy_index(0.0)
        assert index.min_query(degraded=True).record.key == min(keys)
        assert index.max_query(degraded=True).record.key == max(keys)
        faulty.get_drop_rate = 1.0
        lost = index.min_query(degraded=True)
        assert not lost.complete and lost.record is None
        assert lost.unreachable and lost.unreachable[0].contains(min(keys))
        lost = index.max_query(degraded=True)
        assert not lost.complete and lost.record is None
        assert lost.unreachable and lost.unreachable[0].contains(max(keys))


# ----------------------------------------------------------------------
# Acceptance criterion (ISSUE 2)
# ----------------------------------------------------------------------


class TestAcceptance:
    def test_availability_at_drop_020(self):
        """Default retry budget ≥99% vs ≤85% without retries at p=0.2."""
        rates = {}
        for label, policy in (
            ("with", DEFAULT_RETRY_POLICY),
            ("without", NO_RETRY_POLICY),
        ):
            faulty = FaultyDHT(LocalDHT(16, 0), seed=42)
            dht = ResilientDHT(faulty, policy=policy, seed=42)
            index = LHTIndex(dht, IndexConfig(theta_split=8))
            keys = [float(k) for k in np.random.default_rng(42).random(400)]
            index.bulk_load(keys)
            faulty.get_drop_rate = 0.2
            hits = sum(
                index.exact_match_checked(k).status is MatchStatus.PRESENT
                for k in keys
            )
            rates[label] = hits / len(keys)
        assert rates["with"] >= 0.99, rates
        assert rates["without"] <= 0.85, rates
