"""Property tests for the routing-extreme substrates (PR 8 tentpole).

Hypothesis drives random overlays, keys, and churn sequences against
the two claims the substrates are built on:

* **Koorde** — ``route`` always terminates within the documented de
  Bruijn hop bound (``route_hop_bound``) and lands on the kernel owner
  (``peer_of``), for any overlay size, seed, and degree;
* **OneHop** — on a converged overlay every route costs *exactly* one
  hop; under arbitrary join/leave/crash sequences routes remain exact
  (owner always matches ``peer_of``) while tables are stale, and table
  coherence is fully restored once dissemination quiesces.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.dht import KoordeDHT, OneHopDHT

KEYS = st.lists(
    st.text(st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=8),
    min_size=1,
    max_size=6,
)


# ----------------------------------------------------------------------
# Koorde
# ----------------------------------------------------------------------


@given(
    seed=st.integers(0, 2**16),
    n_peers=st.integers(1, 48),
    degree=st.sampled_from([2, 4, 16]),
    keys=KEYS,
)
def test_koorde_route_lands_on_owner_within_bound(seed, n_peers, degree, keys):
    dht = KoordeDHT(n_peers=n_peers, seed=seed, degree=degree)
    bound = dht.route_hop_bound()
    for key in keys:
        owner, hops = dht.route(key)
        assert owner == dht.peer_of(key)
        assert 1 <= hops <= bound


@given(seed=st.integers(0, 2**16), n_peers=st.integers(1, 48))
def test_koorde_pointers_coherent(seed, n_peers):
    KoordeDHT(n_peers=n_peers, seed=seed).check_pointers()


@settings(max_examples=25)
@given(seed=st.integers(0, 2**10), n_peers=st.sampled_from([16, 32, 48]))
def test_koorde_mean_hops_track_de_bruijn_diameter(seed, n_peers):
    """The *average* routed cost stays near log_k(n) + delivery — far
    under the worst-case bound the route guard allows."""
    dht = KoordeDHT(n_peers=n_peers, seed=seed)
    total = 0
    n_keys = 64
    for i in range(n_keys):
        _, hops = dht.route(f"mean-{i}")
        total += hops
    # log_16(48) < 2 digit injections + best-start slack + delivery.
    # Sparse rings with unlucky id spacing cost a few extra successor
    # corrections per digit (seed=283/n=48 averages 5.4), so the bound
    # leaves headroom while staying far under route_hop_bound() (~450).
    assert total / n_keys <= 8.0


# ----------------------------------------------------------------------
# OneHop
# ----------------------------------------------------------------------


@given(seed=st.integers(0, 2**16), n_peers=st.integers(1, 32), keys=KEYS)
def test_onehop_converged_routes_exactly_one_hop(seed, n_peers, keys):
    dht = OneHopDHT(n_peers=n_peers, seed=seed)
    assert dht.converged
    for key in keys:
        owner, hops = dht.route(key)
        assert hops == 1
        assert owner == dht.peer_of(key)


CHURN_OPS = st.lists(
    st.tuples(st.sampled_from(["join", "leave", "fail"]), st.integers(0, 2**30)),
    max_size=12,
)


def _apply_churn(dht: OneHopDHT, ops) -> None:
    for op, pick in ops:
        if op == "join" or dht.n_peers <= 2:
            dht.join()
        else:
            victim = dht.node_ids[pick % dht.n_peers]
            dht.leave(victim, graceful=(op == "leave"))
        if pick % 2:  # interleave partial dissemination with none
            dht.disseminate()
        dht.check_tables()


@given(
    seed=st.integers(0, 2**16),
    n_peers=st.integers(2, 16),
    ops=CHURN_OPS,
    keys=KEYS,
)
def test_onehop_routes_stay_exact_under_stale_tables(seed, n_peers, ops, keys):
    """Mid-churn, tables may be stale — hop counts grow (probes and
    forwards) but the returned owner is always the true kernel owner."""
    dht = OneHopDHT(n_peers=n_peers, seed=seed)
    _apply_churn(dht, ops)
    for key in keys:
        owner, hops = dht.route(key)
        assert hops >= 1
        assert owner == dht.peer_of(key)


@given(seed=st.integers(0, 2**16), n_peers=st.integers(2, 16), ops=CHURN_OPS)
def test_onehop_tables_cohere_after_any_churn_sequence(seed, n_peers, ops):
    dht = OneHopDHT(n_peers=n_peers, seed=seed)
    _apply_churn(dht, ops)
    dht.settle()
    dht.check_tables()
    assert dht.converged
    for key in ("x", "y", "z"):
        owner, hops = dht.route(key)
        assert hops == 1
        assert owner == dht.peer_of(key)


@given(seed=st.integers(0, 2**16), n_peers=st.integers(2, 16))
def test_onehop_single_join_costs_at_most_one_forward(seed, n_peers):
    """Bounded staleness: with exactly one quarantined joiner, a stale
    gateway costs at most one forwarding hop."""
    dht = OneHopDHT(n_peers=n_peers, seed=seed)
    dht.join()
    for i in range(16):
        owner, hops = dht.route(f"q-{i}")
        assert hops <= 2
        assert owner == dht.peer_of(f"q-{i}")
