"""Tests for ordered scans and k-nearest-key queries (extensions)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import IndexConfig, LHTIndex
from repro.core.scan import knn_query, scan_buckets, scan_records
from repro.dht import LocalDHT
from repro.errors import LookupError_

unit_floats = st.floats(min_value=0.0, max_value=0.9999999, allow_nan=False)


def _build(keys, theta=4, seed=0):
    index = LHTIndex(
        LocalDHT(16, seed), IndexConfig(theta_split=theta, max_depth=30)
    )
    for key in keys:
        index.insert(key)
    return index


class TestScan:
    @given(st.lists(unit_floats, min_size=0, max_size=300))
    def test_scan_yields_sorted_records(self, keys):
        index = _build(keys)
        scanned = [r.key for r in index.scan()]
        assert scanned == sorted(keys)

    def test_scan_buckets_in_tree_order(self):
        rng = np.random.default_rng(0)
        index = _build([float(k) for k in rng.random(400)])
        labels = [b.label for b in scan_buckets(index.dht, index.config)]
        lows = [l.interval.low for l in labels]
        assert lows == sorted(lows)
        assert len(labels) == index.leaf_count

    def test_scan_cost_one_lookup_per_leaf(self):
        rng = np.random.default_rng(1)
        index = _build([float(k) for k in rng.random(400)])
        before = index.dht.metrics.snapshot()
        leaves = sum(1 for _ in scan_buckets(index.dht, index.config))
        delta = index.dht.metrics.since(before)
        # one get per leaf, plus at most one repair per step
        assert leaves <= delta.dht_lookups <= 2 * leaves

    def test_scan_empty_index(self):
        index = _build([])
        assert list(index.scan()) == []


class TestKnn:
    @given(
        st.lists(unit_floats, min_size=1, max_size=250, unique=True),
        unit_floats,
        st.integers(1, 10),
    )
    def test_matches_bruteforce(self, keys, probe, k):
        index = _build(keys)
        result = index.knn_query(probe, k)
        expect = sorted(keys, key=lambda key: (abs(key - probe), key))[:k]
        assert [r.key for r in result.records] == expect

    def test_k_larger_than_index(self):
        index = _build([0.2, 0.8])
        result = index.knn_query(0.5, 10)
        assert sorted(r.key for r in result.records) == [0.2, 0.8]

    def test_k_validation(self):
        index = _build([0.5])
        with pytest.raises(LookupError_):
            index.knn_query(0.5, 0)

    def test_does_not_scan_whole_index(self):
        """The frontier bound must stop expansion early on a big index."""
        rng = np.random.default_rng(2)
        index = _build([float(k) for k in rng.random(3000)], theta=8)
        result = index.knn_query(0.5, 3)
        # a full scan would need ~ leaf_count lookups; knn should touch
        # only a neighborhood
        assert result.dht_lookups < index.leaf_count / 4

    def test_probe_at_edges(self):
        rng = np.random.default_rng(3)
        keys = [float(k) for k in rng.random(500)]
        index = _build(keys)
        low = index.knn_query(0.0, 5)
        assert [r.key for r in low.records] == sorted(keys)[:5]
        high = index.knn_query(0.9999999, 5)
        assert sorted(r.key for r in high.records) == sorted(keys)[-5:]

    def test_exact_hit_is_first(self):
        index = _build([0.1, 0.5, 0.9])
        result = index.knn_query(0.5, 2)
        assert result.records[0].key == 0.5
