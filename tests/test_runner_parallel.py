"""Determinism of the parallel experiment engine (``--jobs N``).

Every experiment cell derives its randomness from ``(root seed,
experiment, trial)``, so process placement cannot change any number, and
the parent merges results in submission order.  A ``--jobs 4`` run must
therefore be byte-identical to ``--jobs 1`` — in both printed tables and
result JSON — apart from the wall-clock annotations, which are
explicitly host-dependent and stripped here.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import run_experiments

_NAMES = ["eq3", "minmax", "routing-diversity"]

_WALL_LINE = re.compile(r"^  (wall: |\[[\w-]+ finished in )")


def _normalized_stdout(capsys) -> str:
    """Captured stdout minus the wall-clock/elapsed annotation lines."""
    lines = capsys.readouterr().out.splitlines()
    return "\n".join(line for line in lines if not _WALL_LINE.match(line))


def test_parallel_run_is_byte_identical_to_serial(capsys):
    serial = run_experiments(_NAMES, scale="ci", seed=0, jobs=1)
    serial_out = _normalized_stdout(capsys)
    parallel = run_experiments(_NAMES, scale="ci", seed=0, jobs=4)
    parallel_out = _normalized_stdout(capsys)

    assert parallel_out == serial_out
    assert len(parallel) == len(serial)
    for fast, slow in zip(parallel, serial):
        assert json.dumps(fast.canonical_json(), sort_keys=True) == json.dumps(
            slow.canonical_json(), sort_keys=True
        )


def test_results_carry_wall_clock_timings():
    (result,) = run_experiments(["eq3"], scale="ci", seed=0, jobs=1)
    assert set(result.timings) >= {"build_s", "query_s", "wall_s"}
    assert result.timings["wall_s"] >= 0.0
    # timings are informational: canonical_json must not contain them
    assert "timings" not in result.canonical_json()
    assert "timings" in result.to_json()


def test_jobs_must_be_positive():
    with pytest.raises(ConfigurationError):
        run_experiments(_NAMES, jobs=0)
