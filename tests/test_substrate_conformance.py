"""Parametrized conformance suite over all substrates and wrappers.

The kernel refactor's contract: any :class:`~repro.dht.base.DHT` — six
substrates, four wrappers, and stacked wrapper combinations — satisfies
the same observable behaviour, because storage semantics now live in one
place (:mod:`repro.dht.kernel`).  This suite pins that contract per
configuration:

* put/get/remove round-trips (including overwrite and absent keys);
* ``local_write`` places fresh keys at the responsible peer and charges
  zero DHT-lookups;
* the sorted-id cache stays coherent across join/leave/fail membership
  changes (Chord and CAN, the dynamic overlays);
* ``multi_get`` preserves key order and honours ``absorb_errors``.
"""

from __future__ import annotations

import pytest

from repro.dht import (
    AccessLoggingDHT,
    CANDHT,
    ChordDHT,
    FaultyDHT,
    ReplicatedDHT,
    SerializingDHT,
)
from repro.dht.base import DHT
from repro.errors import DHTError
from repro.experiments.common import SUBSTRATES, make_dht
from repro.resilience import ResilientDHT

N_PEERS = 16
SEED = 7

#: name -> factory over a freshly built substrate.
WRAPPERS = {
    "faulty": lambda inner: FaultyDHT(inner, seed=SEED),
    "replicated": lambda inner: ReplicatedDHT(inner, n_replicas=2),
    "serializing": SerializingDHT,
    "accesslog": AccessLoggingDHT,
    "resilient": ResilientDHT,
}

#: Stacked combinations exercised on top of single wrappers; order reads
#: outermost-first, e.g. ``serializing+replicated`` is
#: ``SerializingDHT(ReplicatedDHT(substrate))``.
STACKS = {
    "serializing+replicated": lambda inner: SerializingDHT(
        ReplicatedDHT(inner, n_replicas=2)
    ),
    "resilient+faulty": lambda inner: ResilientDHT(
        FaultyDHT(inner, seed=SEED)
    ),
    "accesslog+serializing+replicated": lambda inner: AccessLoggingDHT(
        SerializingDHT(ReplicatedDHT(inner, n_replicas=2))
    ),
}

CONFIGS = {
    **{name: (name, None) for name in sorted(SUBSTRATES)},
    **{
        f"chord+{wname}": ("chord", wfactory)
        for wname, wfactory in sorted(WRAPPERS.items())
    },
    **{
        f"chord+{sname}": ("chord", sfactory)
        for sname, sfactory in sorted(STACKS.items())
    },
}


@pytest.fixture(params=sorted(CONFIGS), ids=sorted(CONFIGS))
def dht(request) -> DHT:
    substrate, wrapper = CONFIGS[request.param]
    inner = make_dht(substrate, N_PEERS, SEED)
    return wrapper(inner) if wrapper else inner


class TestRoundTrips:
    def test_put_get_remove(self, dht):
        dht.put("alpha", {"v": 1})
        dht.put("beta", [2, 3])
        assert dht.get("alpha") == {"v": 1}
        assert dht.get("beta") == [2, 3]
        assert dht.get("gamma") is None
        assert dht.remove("alpha") == {"v": 1}
        assert dht.get("alpha") is None
        assert dht.remove("alpha") is None

    def test_overwrite(self, dht):
        dht.put("k", "old")
        dht.put("k", "new")
        assert dht.get("k") == "new"

    def test_contains_via_peek(self, dht):
        assert "k" not in dht
        dht.put("k", 1)
        assert "k" in dht
        assert dht.peek("missing") is None

    def test_keys_enumerates_stored(self, dht):
        for i in range(10):
            dht.put(f"k{i}", i)
        assert set(dht.keys()) == {f"k{i}" for i in range(10)}


class TestLocalWrite:
    def test_fresh_key_lands_at_responsible_peer(self, dht):
        dht.local_write("fresh", 42)
        assert dht.peek("fresh") == 42

    def test_updates_existing_key_in_place(self, dht):
        dht.put("k", "routed")
        dht.local_write("k", "rewritten")
        assert dht.get("k") == "rewritten"

    def test_charges_zero_lookups(self, dht):
        dht.put("k", 1)  # the put itself is charged
        before = dht.metrics.snapshot()
        dht.local_write("k", 2)
        dht.local_write("fresh", 3)
        spent = dht.metrics.since(before)
        assert spent.dht_lookups == 0
        assert spent.hops == 0


class TestMultiGet:
    def test_order_matches_keys(self, dht):
        keys = [f"m{i}" for i in range(8)]
        for i, key in enumerate(keys):
            dht.put(key, i)
        request = [keys[5], "absent", keys[0], keys[7]]
        assert dht.multi_get(request) == [5, None, 0, 7]

    def test_empty_round(self, dht):
        assert dht.multi_get([]) == []

    def test_each_key_charged_once(self, dht):
        keys = [f"m{i}" for i in range(6)]
        for key in keys:
            dht.put(key, 1)
        before = dht.metrics.snapshot()
        dht.multi_get(keys)
        spent = dht.metrics.since(before)
        # Replicated stacks may probe extra replicas on a miss, but a
        # batched round charges at least one routed get per key and
        # nothing is free.
        assert spent.dht_lookups >= len(keys)


class TestAbsorbErrors:
    def test_errors_absorbed_per_key(self):
        inner = make_dht("local", N_PEERS, SEED)
        flaky = FaultyDHT(inner, get_drop_rate=1.0, seed=SEED)
        flaky.put("k", 1)
        # A dropped get returns None (reply lost), never raises.
        assert flaky.multi_get(["k", "k"], absorb_errors=True) == [None, None]

    def test_typed_error_propagates_without_flag(self):
        class ExplodingDHT(SerializingDHT):
            def get(self, key):
                raise DHTError("injected routing failure")

        exploding = ExplodingDHT(make_dht("local", N_PEERS, SEED))
        with pytest.raises(DHTError):
            exploding.multi_get(["a", "b"])
        assert exploding.multi_get(["a", "b"], absorb_errors=True) == [
            None,
            None,
        ]


class TestCacheInvalidation:
    """Membership changes must invalidate the kernel's sorted-id cache."""

    def _assert_coherent(self, dht):
        assert dht.node_ids == sorted(dht.node_ids)
        assert len(dht.node_ids) == dht.n_peers
        assert set(dht.peer_loads()) == set(dht.node_ids)

    def test_chord_join_leave_fail(self):
        dht = ChordDHT(n_peers=12, seed=SEED)
        for i in range(30):
            dht.put(f"k{i}", i)
        self._assert_coherent(dht)

        joined = dht.join()
        assert joined in dht.node_ids
        self._assert_coherent(dht)
        assert all(dht.get(f"k{i}") == i for i in range(30))

        victim = next(nid for nid in dht.node_ids if nid != joined)
        dht.leave(victim, graceful=True)
        assert victim not in dht.node_ids
        self._assert_coherent(dht)
        assert all(dht.get(f"k{i}") == i for i in range(30))

        crashed = dht.node_ids[0]
        dht.fail(crashed)
        assert crashed not in dht.node_ids
        self._assert_coherent(dht)
        # Routing still works; keys on the crashed node are lost, the
        # rest survive.
        dht.stabilize_all(rounds=2)
        dht.check_ring()

    def test_can_join_leave(self):
        dht = CANDHT(n_peers=10, seed=SEED)
        for i in range(30):
            dht.put(f"k{i}", i)
        self._assert_coherent(dht)

        joined = dht.join()
        assert joined in dht.node_ids
        self._assert_coherent(dht)
        assert all(dht.get(f"k{i}") == i for i in range(30))

        for victim in list(dht.node_ids):
            if victim != joined and dht.leave(victim):
                assert victim not in dht.node_ids
                break
        self._assert_coherent(dht)
        dht.check_partition()
        assert all(dht.get(f"k{i}") == i for i in range(30))

    def test_peer_of_tracks_membership(self):
        dht = ChordDHT(n_peers=12, seed=SEED)
        key = "tracked"
        owner_before = dht.peer_of(key)
        # Crash the owner: responsibility must move to a live peer.
        dht.fail(owner_before)
        owner_after = dht.peer_of(key)
        assert owner_after != owner_before
        assert owner_after in dht.node_ids
