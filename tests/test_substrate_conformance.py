"""Parametrized conformance suite over all substrates and wrappers.

The kernel refactor's contract: any :class:`~repro.dht.base.DHT` —
every substrate enrolled in :mod:`repro.dht.registry`, the wrappers,
and stacked wrapper combinations — satisfies the same observable
behaviour, because storage semantics now live in one place
(:mod:`repro.dht.kernel`).  The substrate axis iterates the registry,
so an enrolled substrate joins every matrix here with zero
substrate-specific skips.  This suite pins that contract per
configuration:

* put/get/remove round-trips (including overwrite and absent keys);
* ``local_write`` places fresh keys at the responsible peer and charges
  zero DHT-lookups;
* the sorted-id cache stays coherent across join/leave/fail membership
  changes (Chord, CAN and OneHop, the dynamic overlays);
* ``multi_get`` preserves key order and honours ``absorb_errors``;
* ``multi_put`` is byte-equivalent to sequential puts (stored state
  *and* metrics), charges per key, honours ``absorb_errors``
  symmetrically with ``multi_get``, and is deliberately **not**
  forwarded to ``inner`` by any wrapper.
"""

from __future__ import annotations

import pytest

from repro.dht import (
    AccessLoggingDHT,
    CANDHT,
    ChordDHT,
    FaultyDHT,
    LocalDHT,
    OneHopDHT,
    ReplicatedDHT,
    SerializingDHT,
)
from repro.dht.base import DHT
from repro.dht.registry import make as make_dht, names as substrate_names
from repro.errors import DHTError
from repro.resilience import ResilientDHT

N_PEERS = 16
SEED = 7

#: name -> factory over a freshly built substrate.
WRAPPERS = {
    "faulty": lambda inner: FaultyDHT(inner, seed=SEED),
    "replicated": lambda inner: ReplicatedDHT(inner, n_replicas=2),
    "serializing": SerializingDHT,
    "accesslog": AccessLoggingDHT,
    "resilient": ResilientDHT,
}

#: Stacked combinations exercised on top of single wrappers; order reads
#: outermost-first, e.g. ``serializing+replicated`` is
#: ``SerializingDHT(ReplicatedDHT(substrate))``.
STACKS = {
    "serializing+replicated": lambda inner: SerializingDHT(
        ReplicatedDHT(inner, n_replicas=2)
    ),
    "resilient+faulty": lambda inner: ResilientDHT(
        FaultyDHT(inner, seed=SEED)
    ),
    "accesslog+serializing+replicated": lambda inner: AccessLoggingDHT(
        SerializingDHT(ReplicatedDHT(inner, n_replicas=2))
    ),
}

CONFIGS = {
    **{name: (name, None) for name in substrate_names()},
    **{
        f"chord+{wname}": ("chord", wfactory)
        for wname, wfactory in sorted(WRAPPERS.items())
    },
    **{
        f"chord+{sname}": ("chord", sfactory)
        for sname, sfactory in sorted(STACKS.items())
    },
}


def _build_config(name: str) -> DHT:
    substrate, wrapper = CONFIGS[name]
    inner = make_dht(substrate, N_PEERS, SEED)
    return wrapper(inner) if wrapper else inner


@pytest.fixture(params=sorted(CONFIGS), ids=sorted(CONFIGS))
def dht(request) -> DHT:
    return _build_config(request.param)


@pytest.fixture(params=sorted(CONFIGS), ids=sorted(CONFIGS))
def dht_pair(request) -> tuple[DHT, DHT]:
    """Two independently built, identically configured stacks — one for
    the batched operation under test, one for its sequential twin."""
    return _build_config(request.param), _build_config(request.param)


class TestRoundTrips:
    def test_put_get_remove(self, dht):
        dht.put("alpha", {"v": 1})
        dht.put("beta", [2, 3])
        assert dht.get("alpha") == {"v": 1}
        assert dht.get("beta") == [2, 3]
        assert dht.get("gamma") is None
        assert dht.remove("alpha") == {"v": 1}
        assert dht.get("alpha") is None
        assert dht.remove("alpha") is None

    def test_overwrite(self, dht):
        dht.put("k", "old")
        dht.put("k", "new")
        assert dht.get("k") == "new"

    def test_contains_via_peek(self, dht):
        assert "k" not in dht
        dht.put("k", 1)
        assert "k" in dht
        assert dht.peek("missing") is None

    def test_keys_enumerates_stored(self, dht):
        for i in range(10):
            dht.put(f"k{i}", i)
        assert set(dht.keys()) == {f"k{i}" for i in range(10)}


class TestLocalWrite:
    def test_fresh_key_lands_at_responsible_peer(self, dht):
        dht.local_write("fresh", 42)
        assert dht.peek("fresh") == 42

    def test_updates_existing_key_in_place(self, dht):
        dht.put("k", "routed")
        dht.local_write("k", "rewritten")
        assert dht.get("k") == "rewritten"

    def test_charges_zero_lookups(self, dht):
        dht.put("k", 1)  # the put itself is charged
        before = dht.metrics.snapshot()
        dht.local_write("k", 2)
        dht.local_write("fresh", 3)
        spent = dht.metrics.since(before)
        assert spent.dht_lookups == 0
        assert spent.hops == 0


class TestMultiGet:
    def test_order_matches_keys(self, dht):
        keys = [f"m{i}" for i in range(8)]
        for i, key in enumerate(keys):
            dht.put(key, i)
        request = [keys[5], "absent", keys[0], keys[7]]
        assert dht.multi_get(request) == [5, None, 0, 7]

    def test_empty_round(self, dht):
        assert dht.multi_get([]) == []

    def test_each_key_charged_once(self, dht):
        keys = [f"m{i}" for i in range(6)]
        for key in keys:
            dht.put(key, 1)
        before = dht.metrics.snapshot()
        dht.multi_get(keys)
        spent = dht.metrics.since(before)
        # Replicated stacks may probe extra replicas on a miss, but a
        # batched round charges at least one routed get per key and
        # nothing is free.
        assert spent.dht_lookups >= len(keys)


class TestAbsorbErrors:
    def test_errors_absorbed_per_key(self):
        inner = make_dht("local", N_PEERS, SEED)
        flaky = FaultyDHT(inner, get_drop_rate=1.0, seed=SEED)
        flaky.put("k", 1)
        # A dropped get returns None (reply lost), never raises.
        assert flaky.multi_get(["k", "k"], absorb_errors=True) == [None, None]

    def test_typed_error_propagates_without_flag(self):
        class ExplodingDHT(SerializingDHT):
            def get(self, key):
                raise DHTError("injected routing failure")

        exploding = ExplodingDHT(make_dht("local", N_PEERS, SEED))
        with pytest.raises(DHTError):
            exploding.multi_get(["a", "b"])
        assert exploding.multi_get(["a", "b"], absorb_errors=True) == [
            None,
            None,
        ]


class TestMultiPut:
    ITEMS = [(f"p{i}", {"v": i}) for i in range(8)]

    def test_byte_equivalent_to_sequential_puts(self, dht_pair):
        """One batched round must leave stored state *and* the metrics
        ledger identical to issuing the same puts sequentially."""
        batched, sequential = dht_pair
        batched.multi_put(self.ITEMS)
        for key, value in self.ITEMS:
            sequential.put(key, value)
        for key, value in self.ITEMS:
            assert batched.get(key) == value
            assert sequential.get(key) == value
        assert set(batched.keys()) == set(sequential.keys())
        assert (
            batched.metrics.snapshot().to_dict()
            == sequential.metrics.snapshot().to_dict()
        )

    def test_returns_stored_flags_in_item_order(self, dht):
        assert dht.multi_put(self.ITEMS) == [True] * len(self.ITEMS)
        assert dht.multi_put([]) == []

    def test_last_write_wins_within_a_round(self, dht):
        dht.multi_put([("k", "first"), ("k", "second")])
        assert dht.get("k") == "second"

    def test_each_key_charged(self, dht):
        before = dht.metrics.snapshot()
        dht.multi_put(self.ITEMS)
        spent = dht.metrics.since(before)
        # Replicated stacks charge extra replica puts, but a batched
        # round charges at least one routed put per item and nothing is
        # free.
        assert spent.puts >= len(self.ITEMS)
        assert spent.dht_lookups >= len(self.ITEMS)

    @pytest.mark.parametrize("name", substrate_names())
    def test_bare_substrates_charge_exactly_once_per_key(self, name):
        dht = make_dht(name, N_PEERS, SEED)
        before = dht.metrics.snapshot()
        dht.multi_put(self.ITEMS)
        spent = dht.metrics.since(before)
        assert spent.puts == len(self.ITEMS)
        assert spent.dht_lookups == len(self.ITEMS)


class TestMultiPutAbsorbErrors:
    """``absorb_errors=`` must mirror ``multi_get``: per-key absorption
    into the failure sentinel (``False`` for puts, ``None`` for gets),
    propagation of the typed error without the flag."""

    def test_all_failures_absorbed_per_key(self):
        inner = make_dht("local", N_PEERS, SEED)
        flaky = FaultyDHT(inner, put_fail_rate=1.0, seed=SEED)
        assert flaky.multi_put(
            [("a", 1), ("b", 2)], absorb_errors=True
        ) == [False, False]
        assert flaky.get("a") is None and flaky.get("b") is None

    def test_partial_failures_keep_successful_keys(self):
        inner = make_dht("local", N_PEERS, SEED)
        flaky = FaultyDHT(inner, put_fail_rate=0.5, seed=SEED)
        items = [(f"k{i}", i) for i in range(20)]
        stored = flaky.multi_put(items, absorb_errors=True)
        assert True in stored and False in stored
        for (key, value), ok in zip(items, stored):
            assert flaky.get(key) == (value if ok else None)

    def test_typed_error_propagates_without_flag(self):
        inner = make_dht("local", N_PEERS, SEED)
        flaky = FaultyDHT(inner, put_fail_rate=1.0, seed=SEED)
        with pytest.raises(DHTError):
            flaky.multi_put([("a", 1), ("b", 2)])

    def test_symmetry_with_multi_get(self):
        """The two batched ops absorb the same injected fault class the
        same way: one sentinel per failed key, order preserved."""
        flaky = FaultyDHT(
            make_dht("local", N_PEERS, SEED),
            get_drop_rate=1.0,
            put_fail_rate=1.0,
            seed=SEED,
        )
        keys = ["a", "b", "c"]
        puts = flaky.multi_put([(k, 1) for k in keys], absorb_errors=True)
        gets = flaky.multi_get(keys, absorb_errors=True)
        assert puts == [False] * len(keys)
        assert gets == [None] * len(keys)


class TestMultiPutCacheInvalidation:
    """Batched puts must observe membership changes like single puts:
    the kernel's sorted-id cache is invalidated, so every item lands at
    a live responsible peer."""

    def _assert_routes_live(self, dht, items):
        for key, value in items:
            owner = dht.peer_of(key)
            assert owner in dht.node_ids
            assert dht.get(key) == value

    def test_chord_membership_churn_between_rounds(self):
        dht = ChordDHT(n_peers=12, seed=SEED)
        first = [(f"a{i}", i) for i in range(10)]
        dht.multi_put(first)
        self._assert_routes_live(dht, first)

        dht.join()
        dht.fail(dht.node_ids[0])
        dht.stabilize_all(rounds=2)
        second = [(f"b{i}", i) for i in range(10)]
        dht.multi_put(second)
        self._assert_routes_live(dht, second)
        dht.check_ring()

    def test_can_membership_churn_between_rounds(self):
        dht = CANDHT(n_peers=10, seed=SEED)
        first = [(f"a{i}", i) for i in range(10)]
        dht.multi_put(first)
        self._assert_routes_live(dht, first)

        dht.join()
        for victim in list(dht.node_ids):
            if dht.leave(victim):
                break
        second = [(f"b{i}", i) for i in range(10)]
        dht.multi_put(second)
        self._assert_routes_live(dht, second)
        dht.check_partition()


class _RecordingInner(LocalDHT):
    """Substrate that records batched calls reaching it directly."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.multi_put_calls = 0
        self.multi_get_calls = 0

    def multi_put(self, items, *, absorb_errors=False):
        self.multi_put_calls += 1
        return super().multi_put(items, absorb_errors=absorb_errors)

    def multi_get(self, keys, *, absorb_errors=False):
        self.multi_get_calls += 1
        return super().multi_get(keys, absorb_errors=absorb_errors)


class TestWrapperBatchedOpForwarding:
    """Wrappers must NOT forward batched ops to ``inner`` even when the
    inner substrate overrides them: the inherited sequential defaults go
    through the wrapper's *own* single-key ops, so per-key semantics
    (fault injection, replication, logging, retries) apply to every item.
    Forwarding would skip the whole wrapper stack — the regression this
    class pins (see the DelegatingDHT docstring in repro.dht.kernel)."""

    FACTORIES = {**WRAPPERS, **STACKS}

    @pytest.mark.parametrize("name", sorted(FACTORIES), ids=sorted(FACTORIES))
    def test_inner_overrides_are_never_invoked(self, name):
        inner = _RecordingInner(n_peers=N_PEERS, seed=SEED)
        wrapped = self.FACTORIES[name](inner)

        items = [(f"k{i}", i) for i in range(6)]
        wrapped.multi_put(items)
        wrapped.multi_get([key for key, _ in items])
        assert inner.multi_put_calls == 0
        assert inner.multi_get_calls == 0
        for key, value in items:
            assert wrapped.get(key) == value

    def test_direct_substrate_overrides_still_dispatch(self):
        """The rule is about wrappers, not dynamic dispatch: calling the
        substrate directly must use its own override."""
        inner = _RecordingInner(n_peers=N_PEERS, seed=SEED)
        inner.multi_put([("k", 1)])
        inner.multi_get(["k"])
        assert inner.multi_put_calls == 1
        assert inner.multi_get_calls == 1


class TestCacheInvalidation:
    """Membership changes must invalidate the kernel's sorted-id cache."""

    def _assert_coherent(self, dht):
        assert dht.node_ids == sorted(dht.node_ids)
        assert len(dht.node_ids) == dht.n_peers
        assert set(dht.peer_loads()) == set(dht.node_ids)

    def test_chord_join_leave_fail(self):
        dht = ChordDHT(n_peers=12, seed=SEED)
        for i in range(30):
            dht.put(f"k{i}", i)
        self._assert_coherent(dht)

        joined = dht.join()
        assert joined in dht.node_ids
        self._assert_coherent(dht)
        assert all(dht.get(f"k{i}") == i for i in range(30))

        victim = next(nid for nid in dht.node_ids if nid != joined)
        dht.leave(victim, graceful=True)
        assert victim not in dht.node_ids
        self._assert_coherent(dht)
        assert all(dht.get(f"k{i}") == i for i in range(30))

        crashed = dht.node_ids[0]
        dht.fail(crashed)
        assert crashed not in dht.node_ids
        self._assert_coherent(dht)
        # Routing still works; keys on the crashed node are lost, the
        # rest survive.
        dht.stabilize_all(rounds=2)
        dht.check_ring()

    def test_can_join_leave(self):
        dht = CANDHT(n_peers=10, seed=SEED)
        for i in range(30):
            dht.put(f"k{i}", i)
        self._assert_coherent(dht)

        joined = dht.join()
        assert joined in dht.node_ids
        self._assert_coherent(dht)
        assert all(dht.get(f"k{i}") == i for i in range(30))

        for victim in list(dht.node_ids):
            if victim != joined and dht.leave(victim):
                assert victim not in dht.node_ids
                break
        self._assert_coherent(dht)
        dht.check_partition()
        assert all(dht.get(f"k{i}") == i for i in range(30))

    def test_onehop_join_leave_fail(self):
        dht = OneHopDHT(n_peers=12, seed=SEED)
        for i in range(30):
            dht.put(f"k{i}", i)
        self._assert_coherent(dht)

        joined = dht.join()
        assert joined in dht.node_ids
        self._assert_coherent(dht)
        # Routes stay exact even before the join event disseminates
        # (the previous owner forwards during the quarantine window).
        assert all(dht.get(f"k{i}") == i for i in range(30))

        victim = next(nid for nid in dht.node_ids if nid != joined)
        dht.leave(victim, graceful=True)
        assert victim not in dht.node_ids
        self._assert_coherent(dht)
        assert all(dht.get(f"k{i}") == i for i in range(30))

        crashed = dht.node_ids[0]
        dht.fail(crashed)
        assert crashed not in dht.node_ids
        self._assert_coherent(dht)
        dht.settle()
        dht.check_tables()

    def test_peer_of_tracks_membership(self):
        dht = ChordDHT(n_peers=12, seed=SEED)
        key = "tracked"
        owner_before = dht.peer_of(key)
        # Crash the owner: responsibility must move to a live peer.
        dht.fail(owner_before)
        owner_after = dht.peer_of(key)
        assert owner_after != owner_before
        assert owner_after in dht.node_ids
