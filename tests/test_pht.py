"""Tests for the PHT baseline: lookup, split profile, leaf links, ranges."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.pht import PHTIndex, PHTNode
from repro.core import IndexConfig, Label, ReferenceTree, ROOT
from repro.dht import LocalDHT

unit_floats = st.floats(min_value=0.0, max_value=0.9999999, allow_nan=False)


def _build(keys, theta=8, depth=20, seed=0):
    dht = LocalDHT(n_peers=16, seed=seed)
    index = PHTIndex(dht, IndexConfig(theta_split=theta, max_depth=depth))
    for key in keys:
        index.insert(key)
    return index, dht


class TestStructure:
    def test_bootstrap(self):
        _, dht = _build([])
        node = dht.peek("#0")
        assert isinstance(node, PHTNode) and node.is_leaf

    def test_every_trie_node_is_stored_under_its_label(self):
        """PHT's defining property: internal nodes included, each node is
        addressable directly by its own label."""
        rng = np.random.default_rng(0)
        index, dht = _build([float(k) for k in rng.random(500)], theta=4)
        tree = ReferenceTree(IndexConfig(theta_split=4, max_depth=20))
        for k in rng.random(0):
            pass
        stored = {key for key in dht.keys()}
        for bits in index._leaf_bits:
            label = Label(bits)
            assert str(label) in stored
            for ancestor in label.ancestors():
                if not ancestor.is_virtual_root:
                    assert str(ancestor) in stored
                    assert not dht.peek(str(ancestor)).is_leaf

    def test_same_tree_shape_as_reference(self):
        rng = np.random.default_rng(1)
        keys = [float(k) for k in rng.random(800)]
        index, _ = _build(keys, theta=8)
        tree = ReferenceTree(IndexConfig(theta_split=8, max_depth=20))
        for key in keys:
            tree.insert(key)
        assert sorted(index._leaf_bits) == sorted(
            l.bits for l in tree.leaf_labels
        )


class TestLookup:
    @given(st.lists(unit_floats, min_size=1, max_size=250))
    def test_every_stored_key_retrievable(self, keys):
        index, _ = _build(keys, theta=4, depth=40)
        for key in keys:
            record, _ = index.exact_match(key)
            assert record is not None and record.key == key

    def test_lookup_probe_count_log_d(self):
        rng = np.random.default_rng(2)
        index, _ = _build([float(k) for k in rng.random(2000)], theta=10)
        import math

        bound = math.ceil(math.log2(20)) + 1
        for key in rng.random(300):
            result = index.lookup(float(key))
            assert result.found
            assert result.dht_lookups <= bound

    def test_contains(self):
        index, _ = _build([0.42])
        assert 0.42 in index
        assert 0.5 not in index

    def test_delete(self):
        index, _ = _build([0.3, 0.4])
        deleted, _ = index.delete(0.3)
        assert deleted
        deleted, _ = index.delete(0.3)
        assert not deleted
        assert len(index) == 1


class TestSplitProfile:
    def test_split_costs_match_equation_2(self):
        """Ψ_PHT (Eq. 2): both children remote (whole bucket moved) plus
        up to two B+-tree link repairs, 2-4 DHT-lookups per split."""
        rng = np.random.default_rng(3)
        index, _ = _build([float(k) for k in rng.random(2000)], theta=10)
        assert index.ledger.split_count > 50
        for event in index.ledger.splits:
            assert 2 <= event.dht_lookups <= 4
            # the full bucket moves (≥ θ-1; lopsided splits can leave a
            # child overfull, so occasionally slightly more)
            assert event.records_moved >= 10 - 1
        typical = sum(1 for e in index.ledger.splits if e.records_moved == 9)
        assert typical >= index.ledger.split_count * 0.9
        # interior splits (the vast majority) repair both neighbors
        fours = sum(1 for e in index.ledger.splits if e.dht_lookups == 4)
        assert fours >= index.ledger.split_count * 0.8

    def test_maintenance_roughly_4x_lht_lookups(self):
        from repro.core import LHTIndex

        rng = np.random.default_rng(4)
        keys = [float(k) for k in rng.random(3000)]
        pht, _ = _build(keys, theta=10)
        lht = LHTIndex(
            LocalDHT(n_peers=16, seed=0),
            IndexConfig(theta_split=10, max_depth=20),
        )
        for key in keys:
            lht.insert(key)
        ratio = lht.ledger.maintenance_lookups / pht.ledger.maintenance_lookups
        assert 0.2 < ratio < 0.3  # the paper's "about 25%"
        move_ratio = (
            lht.ledger.maintenance_records_moved
            / pht.ledger.maintenance_records_moved
        )
        assert 0.4 < move_ratio < 0.6  # the paper's "half"


class TestLeafLinks:
    def test_links_form_ordered_chain(self):
        rng = np.random.default_rng(5)
        index, dht = _build([float(k) for k in rng.random(1000)], theta=8)
        # walk from the leftmost leaf via next links
        label = ROOT
        node = dht.peek(str(label))
        while not node.is_leaf:
            label = node.label.left_child
            node = dht.peek(str(label))
        seen = []
        while node is not None:
            seen.append(node.label)
            node = dht.peek(str(node.next_label)) if node.next_label else None
        assert sorted(str(l) for l in seen) == sorted(
            str(Label(bits)) for bits in index._leaf_bits
        )
        lows = [l.interval.low for l in seen]
        assert lows == sorted(lows)

    def test_prev_links_mirror_next_links(self):
        rng = np.random.default_rng(6)
        index, dht = _build([float(k) for k in rng.random(600)], theta=8)
        for bits in index._leaf_bits:
            node = dht.peek(str(Label(bits)))
            if node.next_label is not None:
                neighbor = dht.peek(str(node.next_label))
                assert neighbor.prev_label == node.label


class TestRangeQueries:
    @given(st.lists(unit_floats, min_size=1, max_size=200), unit_floats, unit_floats)
    def test_sequential_matches_bruteforce(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        index, _ = _build(keys, theta=4)
        result = index.range_query_sequential(lo, hi)
        assert result.keys == sorted(k for k in keys if lo <= k < hi)

    @given(st.lists(unit_floats, min_size=1, max_size=200), unit_floats, unit_floats)
    def test_parallel_matches_bruteforce(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        index, _ = _build(keys, theta=4)
        result = index.range_query_parallel(lo, hi)
        assert result.keys == sorted(k for k in keys if lo <= k < hi)

    def test_empty_range(self):
        index, _ = _build([0.5])
        assert index.range_query_sequential(0.3, 0.3).records == ()
        assert index.range_query_parallel(0.3, 0.3).records == ()

    def test_parallel_uses_more_bandwidth_less_latency(self):
        rng = np.random.default_rng(7)
        index, _ = _build([float(k) for k in rng.random(3000)], theta=8)
        seq = index.range_query_sequential(0.2, 0.7)
        par = index.range_query_parallel(0.2, 0.7)
        assert par.dht_lookups > seq.dht_lookups
        assert par.parallel_steps < seq.parallel_steps

    def test_sequential_latency_linear_in_buckets(self):
        rng = np.random.default_rng(8)
        index, _ = _build([float(k) for k in rng.random(3000)], theta=8)
        result = index.range_query_sequential(0.1, 0.9)
        assert result.parallel_steps >= result.buckets_visited


class TestMinMax:
    @given(st.lists(unit_floats, min_size=1, max_size=200))
    def test_min_max_correct(self, keys):
        index, _ = _build(keys, theta=4)
        mn, _ = index.min_query()
        mx, _ = index.max_query()
        assert mn.key == min(keys)
        assert mx.key == max(keys)

    def test_cost_grows_with_depth(self):
        small, _ = _build([0.5])
        rng = np.random.default_rng(9)
        large, _ = _build([float(k) for k in rng.random(3000)], theta=8)
        _, small_cost = small.min_query()
        _, large_cost = large.min_query()
        assert large_cost > small_cost


class TestBulkLoad:
    def test_equivalent_to_per_record_insert(self):
        rng = np.random.default_rng(10)
        keys = [float(k) for k in rng.random(1200)]
        slow, _ = _build(keys, theta=8)
        fast_dht = LocalDHT(n_peers=16, seed=0)
        fast = PHTIndex(fast_dht, IndexConfig(theta_split=8, max_depth=20))
        fast.bulk_load(keys)
        assert sorted(fast._leaf_bits) == sorted(slow._leaf_bits)
        assert fast.ledger.maintenance_lookups == slow.ledger.maintenance_lookups
        assert (
            fast.ledger.maintenance_records_moved
            == slow.ledger.maintenance_records_moved
        )
