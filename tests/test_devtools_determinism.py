"""Determinism-harness tests: same-seed replay on LocalDHT and Chord.

The ``assert_deterministic`` fixture (tests/conftest.py) is the
issue-mandated entry point; the classes below also exercise the library
API, the divergence path, and the CLI driver.
"""

from __future__ import annotations

import pytest

import repro.devtools.determinism as determinism
from repro.devtools.determinism import (
    DeterminismReport,
    check_determinism,
    run_workload,
    trace_digest,
)
from repro.errors import ConfigurationError, DeterminismError


class TestSameSeedFixture:
    def test_local_substrate_is_deterministic(self, assert_deterministic):
        report = assert_deterministic(seed=3, substrate="local", n_ops=200)
        assert report.runs == 2
        assert len(set(report.digests)) == 1

    def test_chord_substrate_is_deterministic(self, assert_deterministic):
        assert_deterministic(seed=3, substrate="chord", n_ops=200, n_peers=12)

    def test_cached_local_substrate_is_deterministic(
        self, assert_deterministic
    ):
        """The leaf cache (LRU state, validation probes, invalidation)
        must replay identically from the root seed."""
        report = assert_deterministic(
            seed=3, substrate="cached-local", n_ops=200
        )
        assert len(set(report.digests)) == 1

    def test_cached_local_agrees_with_local_on_answers(self):
        """Same seed, cache on vs off: every trace line must agree on
        everything except cost (hits are cheaper, staleness dearer)."""
        plain = run_workload(seed=4, substrate="local", n_ops=150)
        cached = run_workload(seed=4, substrate="cached-local", n_ops=150)
        assert len(plain) == len(cached)

        def strip_cost(line: str) -> str:
            return " ".join(
                f for f in line.split() if not f.startswith("cost=")
            )

        for a, b in zip(plain, cached):
            assert strip_cost(a) == strip_cost(b)

    def test_sanitized_run_is_deterministic(
        self, assert_deterministic, monkeypatch
    ):
        """The sanitizer reads through the oracle only, so turning it on
        must not perturb the trace."""
        baseline = trace_digest(run_workload(seed=5, n_ops=150))
        monkeypatch.setenv("LHT_SANITIZE", "1")
        report = assert_deterministic(seed=5, substrate="local", n_ops=150)
        assert report.digests[0] == baseline


class TestLibraryApi:
    def test_different_seeds_diverge(self):
        a = trace_digest(run_workload(seed=0, n_ops=150))
        b = trace_digest(run_workload(seed=1, n_ops=150))
        assert a != b

    def test_trace_shape(self):
        events = run_workload(seed=0, n_ops=50)
        assert len(events) == 51  # one line per op + final digest line
        assert events[0].startswith("00000 ")
        assert events[-1].startswith("final ")

    def test_unknown_substrate_rejected(self):
        with pytest.raises(ConfigurationError, match="substrate"):
            run_workload(substrate="carrier-pigeon")

    def test_too_few_runs_rejected(self):
        with pytest.raises(ConfigurationError, match="2 runs"):
            check_determinism(runs=1)

    def test_divergence_reported(self, monkeypatch):
        """Force a divergence and check the report pinpoints it."""
        real = determinism.run_workload
        calls = {"n": 0}

        def flaky(**kwargs):
            events = real(**kwargs)
            calls["n"] += 1
            if calls["n"] == 2:
                events[7] = events[7] + " cosmic-ray"
            return events

        monkeypatch.setattr(determinism, "run_workload", flaky)
        report = check_determinism(seed=0, n_ops=50)
        assert not report.matched
        assert report.first_divergence == 7
        assert any("cosmic-ray" in line for line in report.diff)
        assert "NON-DETERMINISTIC" in report.summary()
        with pytest.raises(DeterminismError, match="diverges at trace line 7"):
            report.raise_if_diverged()

    def test_matched_report_raise_is_noop(self):
        report = DeterminismReport(
            matched=True,
            runs=2,
            seed=0,
            substrate="local",
            digests=("abc", "abc"),
            first_divergence=None,
            diff=(),
        )
        report.raise_if_diverged()  # must not raise
        assert "deterministic" in report.summary()


class TestCli:
    def test_cli_reports_deterministic(self, capsys):
        code = determinism.main(["--seed", "2", "--ops", "80"])
        assert code == 0
        assert "deterministic" in capsys.readouterr().out

    def test_cli_bad_runs_is_a_clean_error(self, capsys):
        assert determinism.main(["--runs", "1", "--ops", "10"]) == 2
        assert "at least 2 runs" in capsys.readouterr().err
