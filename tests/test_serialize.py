"""Tests for the bucket wire format."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import LeafBucket, Record, Label
from repro.core.serialize import (
    bucket_from_dict,
    bucket_to_dict,
    dumps,
    loads,
    record_from_dict,
    record_to_dict,
)
from repro.errors import ReproError

unit_floats = st.floats(min_value=0.0, max_value=0.9999999, allow_nan=False)
json_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-1000, 1000),
    st.text(max_size=20),
)


class TestRecordRoundtrip:
    @given(unit_floats, json_values)
    def test_dict_roundtrip(self, key, value):
        record = Record(key, value)
        assert record_from_dict(record_to_dict(record)) == record

    def test_malformed(self):
        with pytest.raises(ReproError):
            record_from_dict({"no_key": 1})
        with pytest.raises(ReproError):
            record_from_dict({"key": "not-a-number"})


class TestBucketRoundtrip:
    @given(
        st.text(alphabet="01", min_size=0, max_size=10),
        st.lists(st.tuples(unit_floats, json_values), max_size=30),
    )
    def test_json_roundtrip(self, bits, items):
        label = Label("0" + bits)
        records = [
            Record(k, v) for k, v in items if label.contains(k)
        ]
        bucket = LeafBucket(label, records)
        restored = loads(dumps(bucket))
        assert restored.label == bucket.label
        assert restored.records == bucket.records

    def test_version_check(self):
        data = bucket_to_dict(LeafBucket(Label("0")))
        data["format"] = 99
        with pytest.raises(ReproError):
            bucket_from_dict(data)

    def test_malformed_payloads(self):
        with pytest.raises(ReproError):
            loads(b"not json at all {")
        with pytest.raises(ReproError):
            bucket_from_dict({"format": 1})  # missing fields

    def test_canonical_bytes_stable(self):
        bucket = LeafBucket(Label("01"), [Record(0.6, "x")])
        assert dumps(bucket) == dumps(bucket)

    def test_records_resorted_on_load(self):
        data = {
            "format": 1,
            "label": "#0",
            "records": [{"key": 0.9, "value": None}, {"key": 0.1, "value": None}],
        }
        bucket = bucket_from_dict(data)
        assert [r.key for r in bucket.records] == [0.1, 0.9]
