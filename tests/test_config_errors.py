"""Tests for configuration validation and the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.core import IndexConfig, DEFAULT_CONFIG
from repro import errors


class TestIndexConfig:
    def test_defaults_match_paper(self):
        assert DEFAULT_CONFIG.theta_split == 100  # §9.2 footnote
        assert DEFAULT_CONFIG.max_depth == 20  # §9.3
        assert not DEFAULT_CONFIG.merge_enabled

    def test_record_capacity(self):
        # one slot is the leaf label
        assert IndexConfig(theta_split=100).record_capacity == 99

    def test_merge_threshold_defaults_to_half(self):
        assert IndexConfig(theta_split=100).merge_threshold == 50

    def test_explicit_merge_threshold(self):
        config = IndexConfig(theta_split=100, merge_threshold=30)
        assert config.merge_threshold == 30

    def test_validation(self):
        with pytest.raises(errors.ConfigurationError):
            IndexConfig(theta_split=1)
        with pytest.raises(errors.ConfigurationError):
            IndexConfig(max_depth=0)
        with pytest.raises(errors.ConfigurationError):
            IndexConfig(theta_split=10, merge_threshold=100)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.theta_split = 5  # type: ignore[misc]


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "LabelError",
            "KeyOutOfRangeError",
            "DepthExceededError",
            "LookupError_",
            "DHTError",
            "NoSuchPeerError",
            "EmptyOverlayError",
            "RoutingError",
            "SimulationError",
            "ConfigurationError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_dht_errors_nest(self):
        assert issubclass(errors.RoutingError, errors.DHTError)
        assert issubclass(errors.EmptyOverlayError, errors.DHTError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.RoutingError("x")
