"""Tests for the Markdown report generator."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult, Series
from repro.experiments.report import (
    load_directory,
    load_result,
    main,
    to_markdown,
)


def _sample(experiment_id: str = "E1") -> ExperimentResult:
    return ExperimentResult(
        experiment_id=experiment_id,
        title="demo",
        x_label="size",
        y_label="cost",
        params={"scale": "ci", "seed": 0},
        series=[
            Series("lht", [1.0, 2.0], [3.0, 4.0], [0.1, 0.0]),
            Series("pht", [1.0, 2.0], [6.0, 8.0]),
        ],
        notes="shape holds",
    )


class TestLoading:
    def test_roundtrip_through_save(self, tmp_path):
        path = _sample().save(tmp_path)
        loaded = load_result(path)
        assert loaded.experiment_id == "E1"
        assert loaded.series_by_label("lht").y == [3.0, 4.0]
        assert loaded.series_by_label("lht").y_err == [0.1, 0.0]

    def test_directory_ordering(self, tmp_path):
        for exp in ("E10", "E2", "E1"):
            _sample(exp).save(tmp_path)
        results = load_directory(tmp_path)
        assert [r.experiment_id for r in results] == ["E1", "E2", "E10"]

    def test_malformed_file(self, tmp_path):
        bad = tmp_path / "e1.json"
        bad.write_text(json.dumps({"oops": True}))
        with pytest.raises(ConfigurationError):
            load_result(bad)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_directory(tmp_path / "nope")


class TestRendering:
    def test_markdown_contains_tables_and_notes(self):
        text = to_markdown([_sample()])
        assert "## E1: demo" in text
        assert "| size | lht | pht |" in text
        assert "± 0.1" in text
        assert "> shape holds" in text

    def test_error_of_zero_not_rendered(self):
        text = to_markdown([_sample()])
        # second lht point has y_err 0.0: rendered bare
        assert "| 2 | 4 | 8 |" in text

    def test_cli(self, tmp_path, capsys):
        _sample().save(tmp_path)
        assert main([str(tmp_path)]) == 0
        assert "## E1: demo" in capsys.readouterr().out
